type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else if Float.is_nan x || Float.abs x = infinity then "null" (* JSON has no NaN/inf *)
  else Printf.sprintf "%.12g" x

let to_string ?(indent = 0) v =
  let buf = Buffer.create 1024 in
  let pad depth = if indent > 0 then Buffer.add_string buf (String.make (depth * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- strict syntax validation ------------------------------------------- *)

exception Bad of string

let validate text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let error msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let string_body () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> error "bad unicode escape"
          done
        | _ -> error "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> error "control character in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then error "expected digits"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> string_body ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec fields () =
          skip_ws ();
          string_body ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}'"
        in
        fields ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec items () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']'"
        in
        items ()
      end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> error "expected a value"
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing content at offset %d" !pos) else Ok ()
  with Bad msg -> Error msg

(* --- parsing ------------------------------------------------------------- *)

(* Same grammar as [validate], but building the value: the CLI reads
   back its own exports (trace/metrics files, explore points) through
   this.  Numbers parse as [Int] when they are integral int literals
   and as [Float] otherwise, matching what [to_string] emits. *)
let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let error msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word = String.iter (fun c -> expect c) word in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> error "bad unicode escape"
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'u' ->
          advance ();
          let start = !pos in
          for _ = 1 to 4 do
            hex_digit ()
          done;
          let code = int_of_string ("0x" ^ String.sub text start 4) in
          (* Keep the exporter's byte-level round trip: BMP code points
             re-encode as UTF-8; we only ever emit \u00XX ourselves. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> error "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> error "control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then error "expected digits"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      is_float := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let lexeme = String.sub text start (!pos - start) in
    if !is_float then Float (float_of_string lexeme)
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> Float (float_of_string lexeme)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (string_body ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' ->
      literal "true";
      Bool true
    | Some 'f' ->
      literal "false";
      Bool false
    | Some 'n' ->
      literal "null";
      Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> error "expected a value"
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing content at offset %d" !pos) else Ok v
  with Bad msg -> Error msg

(* Object-walking helpers for consumers of parsed documents. *)
let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
