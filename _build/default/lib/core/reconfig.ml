module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route

type cost = {
  from_uc : int;
  to_uc : int;
  smooth : bool;
  paths_changed : int;
  shared_paths : int;
  slot_writes : int;
  reconfiguration_ns : Noc_util.Units.latency;
}

let setup_cycles = 128

(* Hardware view of one configuration: (link, slot) -> (src, dst, hop),
   and (src, dst) -> path, built from the use-case's routes. *)
let entries_of_routes ~slots routes =
  let table = Hashtbl.create 256 in
  let paths = Hashtbl.create 64 in
  List.iter
    (fun r ->
      Hashtbl.replace paths (r.Route.src_core, r.Route.dst_core) r.Route.links;
      List.iter
        (fun start ->
          List.iteri
            (fun hop link ->
              Hashtbl.replace table
                (link, (start + hop) mod slots)
                (r.Route.src_core, r.Route.dst_core, hop))
            r.Route.links)
        r.Route.slot_starts)
    routes;
  (table, paths)

let pair (m : Mapping.t) ~from_uc ~to_uc =
  let n_uc = Array.length m.Mapping.states in
  if from_uc < 0 || from_uc >= n_uc || to_uc < 0 || to_uc >= n_uc then
    invalid_arg "Reconfig.pair: use-case id out of range";
  if from_uc = to_uc then invalid_arg "Reconfig.pair: identical use-cases";
  let config = m.Mapping.config in
  let slots = config.Config.slots in
  let table_a, paths_a = entries_of_routes ~slots (Mapping.routes_of_use_case m from_uc) in
  let table_b, paths_b = entries_of_routes ~slots (Mapping.routes_of_use_case m to_uc) in
  (* Entries to rewrite: present-and-different or present-on-one-side. *)
  let writes = ref 0 in
  Hashtbl.iter
    (fun key v ->
      match Hashtbl.find_opt table_b key with
      | Some w when w = v -> ()
      | Some _ | None -> incr writes)
    table_a;
  Hashtbl.iter (fun key _ -> if not (Hashtbl.mem table_a key) then incr writes) table_b;
  (* Paths shared vs changed, over core pairs routed in both. *)
  let shared = ref 0 and changed = ref 0 in
  Hashtbl.iter
    (fun pair links ->
      match Hashtbl.find_opt paths_b pair with
      | Some links' -> if links = links' then incr shared else incr changed
      | None -> ())
    paths_a;
  let group_of = Array.make n_uc (-1) in
  List.iteri (fun gi g -> List.iter (fun u -> group_of.(u) <- gi) g) m.Mapping.groups;
  let smooth = group_of.(from_uc) = group_of.(to_uc) in
  (* Inside a group the configuration is shared by construction
     (including mirror reservations for flows a member lacks), so no
     entry is ever rewritten; Verify.verify checks the occupancy
     equality independently. *)
  let writes = if smooth then 0 else !writes in
  let changed = if smooth then 0 else !changed in
  let cycles = if writes = 0 then 0 else setup_cycles + writes in
  {
    from_uc;
    to_uc;
    smooth;
    paths_changed = changed;
    shared_paths = !shared;
    slot_writes = writes;
    reconfiguration_ns =
      float_of_int cycles *. Noc_util.Units.cycle_ns config.Config.freq_mhz;
  }

let analyze (m : Mapping.t) =
  let n_uc = Array.length m.Mapping.states in
  let acc = ref [] in
  for a = n_uc - 1 downto 0 do
    for b = n_uc - 1 downto a + 1 do
      acc := pair m ~from_uc:a ~to_uc:b :: !acc
    done
  done;
  !acc

let worst (m : Mapping.t) =
  match analyze m with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best c -> if c.slot_writes > best.slot_writes then c else best)
         first rest)

let pp ppf c =
  Format.fprintf ppf
    "uc %d <-> uc %d: %s, %d paths changed / %d shared, %d slot writes, %.1f ns" c.from_uc
    c.to_uc
    (if c.smooth then "smooth (shared config)" else "re-configurable")
    c.paths_changed c.shared_paths c.slot_writes c.reconfiguration_ns
