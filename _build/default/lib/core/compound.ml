module Use_case = Noc_traffic.Use_case
module Flow = Noc_traffic.Flow

type t = {
  use_case : Use_case.t;
  members : int list;
}

let default_name members =
  "U_" ^ String.concat "" (List.map (fun u -> string_of_int u.Use_case.id) members)

let merge ~id ~name = function
  | [] -> invalid_arg "Compound.merge: no members"
  | first :: _ as members ->
    let cores = first.Use_case.cores in
    List.iter
      (fun u ->
        if u.Use_case.cores <> cores then
          invalid_arg "Compound.merge: members disagree on core count")
      members;
    (* Use_case.create already merges duplicate ordered pairs with
       sum-bandwidth / min-latency, which is exactly the compound rule. *)
    Use_case.create ~id ~name ~cores (List.concat_map (fun u -> u.Use_case.flows) members)

let generate base ~parallel =
  let by_id = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace by_id u.Use_case.id u) base;
  let next = ref (List.fold_left (fun acc u -> max acc (u.Use_case.id + 1)) 0 base) in
  let build set =
    if List.length set < 2 then
      invalid_arg "Compound.generate: a parallel set needs at least two members";
    let sorted = List.sort_uniq compare set in
    if List.length sorted <> List.length set then
      invalid_arg "Compound.generate: duplicate member in parallel set";
    let members =
      List.map
        (fun uid ->
          match Hashtbl.find_opt by_id uid with
          | Some u -> u
          | None -> invalid_arg (Printf.sprintf "Compound.generate: unknown use-case %d" uid))
        sorted
    in
    let id = !next in
    incr next;
    { use_case = merge ~id ~name:(default_name members) members; members = sorted }
  in
  let compounds = List.map build parallel in
  (base @ List.map (fun c -> c.use_case) compounds, compounds)
