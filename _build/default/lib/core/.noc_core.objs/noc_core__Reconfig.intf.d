lib/core/reconfig.mli: Format Mapping Noc_util
