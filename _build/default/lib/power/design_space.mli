(** Multi-knob design-space exploration.

    Generalises the Fig 7(a) frequency sweep: the designer picks
    candidate frequencies, TDMA slot-table sizes and grid families, and
    gets every feasible design point with its NoC size, switch area and
    power — plus the Pareto-optimal subset over (area, power).  This is
    the "choose the optimum design point based on the objectives of the
    designer" step the paper leaves to the reader (§6.3). *)

type axes = {
  frequencies : Noc_util.Units.frequency list;
  slot_counts : int list;
  topologies : Noc_arch.Mesh.kind list;
}

val default_axes : axes
(** Frequencies 250/500/1000 MHz, 16/32/64 slots, mesh only. *)

type point = {
  freq_mhz : Noc_util.Units.frequency;
  slots : int;
  topology : Noc_arch.Mesh.kind;
  switches : int option;            (** [None] = infeasible *)
  area_mm2 : Noc_util.Units.area option;
  power_mw : float option;          (** design-point power *)
}

val explore :
  ?axes:axes ->
  config:Noc_arch.Noc_config.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  point list
(** Run the design flow at every axis combination (other knobs from
    [config]); points come out in a deterministic axis order. *)

val pareto : point list -> point list
(** Feasible points not dominated in (area, power): a point is dropped
    when another has area and power both no worse and one strictly
    better. *)

val print : point list -> unit
(** Render the space (and mark the Pareto members) as a table. *)
