let voltage_ratio ~freq ~base =
  if freq <= 0.0 || base <= 0.0 then invalid_arg "Dvfs.voltage_ratio: non-positive frequency";
  sqrt (freq /. base)

let power_ratio ~freq ~base =
  if freq <= 0.0 || base <= 0.0 then invalid_arg "Dvfs.power_ratio: non-positive frequency";
  (freq /. base) ** 2.0

let savings ~f_design ~epochs =
  if epochs = [] then invalid_arg "Dvfs.savings: no epochs";
  List.iter
    (fun (f, w) ->
      if w <= 0.0 then invalid_arg "Dvfs.savings: non-positive weight";
      if f <= 0.0 then invalid_arg "Dvfs.savings: non-positive frequency";
      if f > f_design +. 1e-9 then
        invalid_arg "Dvfs.savings: an epoch frequency exceeds the design point")
    epochs;
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 epochs in
  let scaled =
    List.fold_left (fun acc (f, w) -> acc +. (w *. power_ratio ~freq:f ~base:f_design)) 0.0 epochs
  in
  1.0 -. (scaled /. total_w)

let savings_percent ~f_design ~epochs = 100.0 *. savings ~f_design ~epochs
