lib/benchkit/soc_designs.mli: Noc_core Noc_traffic
