module J = Noc_export.Json
module Clock = Noc_obs.Clock

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect ?build ~socket () =
  match Unix.socket PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
    | () -> (
      let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
      let t = { fd; ic; oc; next_id = 0 } in
      let fail msg =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error msg
      in
      match input_line ic with
      | exception End_of_file -> fail "server closed the connection before greeting"
      | exception Sys_error msg -> fail msg
      | greeting -> (
        match Protocol.check_greeting greeting with
        | Error msg -> fail msg
        | Ok _server_build -> (
          output_string oc (Protocol.hello ?build ());
          flush oc;
          match input_line ic with
          | exception End_of_file -> fail "server closed the connection during handshake"
          | exception Sys_error msg -> fail msg
          | verdict -> (
            match Protocol.hello_verdict verdict with
            | Ok () -> Ok t
            | Error msg -> fail msg)))))

let send t op =
  let id = t.next_id in
  t.next_id <- id + 1;
  output_string t.oc (Protocol.encode_request { Protocol.id; op });
  flush t.oc;
  id

let recv t =
  match input_line t.ic with
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error msg -> Error msg
  | line -> Protocol.decode_response line

let request t op =
  let id = send t op in
  let rec await () =
    match recv t with
    | Error _ as e -> e
    | Ok response when Protocol.response_id response = id -> Ok response
    | Ok _ -> await ()
  in
  await ()

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- load driver --------------------------------------------------------- *)

type load_stats = {
  requests : int;
  ok : int;
  coalesced : int;
  shed_retries : int;
  failures : int;
  payload_bytes : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
}

type worker_tally = {
  mutable w_ok : int;
  mutable w_coalesced : int;
  mutable w_shed : int;
  mutable w_failures : int;
  mutable w_bytes : int;
  mutable w_latencies : float list;  (* seconds, newest first *)
}

let max_shed_retries = 1000

let run_connection ?build ~socket ~repeat ops =
  match connect ?build ~socket () with
  | Error msg -> Error msg
  | Ok conn ->
    let tally =
      { w_ok = 0; w_coalesced = 0; w_shed = 0; w_failures = 0; w_bytes = 0; w_latencies = [] }
    in
    let rec one_op retries op =
      let started = Clock.wall () in
      match request conn op with
      | Error msg ->
        tally.w_failures <- tally.w_failures + 1;
        ignore msg
      | Ok (Protocol.Result { payload; coalesced; _ }) ->
        tally.w_latencies <- (Clock.wall () -. started) :: tally.w_latencies;
        tally.w_ok <- tally.w_ok + 1;
        if coalesced then tally.w_coalesced <- tally.w_coalesced + 1;
        tally.w_bytes <- tally.w_bytes + String.length payload
      | Ok (Protocol.Failure { code; retry_after_ms; _ })
        when (code = Protocol.Overloaded || code = Protocol.Too_many_inflight)
             && retries < max_shed_retries ->
        tally.w_shed <- tally.w_shed + 1;
        Unix.sleepf (float_of_int (Option.value retry_after_ms ~default:10) /. 1000.);
        one_op (retries + 1) op
      | Ok (Protocol.Failure _) -> tally.w_failures <- tally.w_failures + 1
    in
    for _ = 1 to repeat do
      List.iter (one_op 0) ops
    done;
    close conn;
    Ok tally

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let drive ?build ~socket ~connections ~repeat ops =
  let started = Clock.wall () in
  let domains =
    List.init connections (fun _ ->
        Domain.spawn (fun () -> run_connection ?build ~socket ~repeat ops))
  in
  let outcomes = List.map Domain.join domains in
  let elapsed_s = Clock.wall () -. started in
  match List.find_opt Result.is_error outcomes with
  | Some (Error msg) -> Error msg
  | _ ->
    let tallies = List.filter_map Result.to_option outcomes in
    let sum f = List.fold_left (fun acc w -> acc + f w) 0 tallies in
    let latencies =
      Array.of_list (List.concat_map (fun w -> w.w_latencies) tallies)
    in
    Array.sort compare latencies;
    let requests = sum (fun w -> w.w_ok) + sum (fun w -> w.w_failures) in
    Ok
      {
        requests;
        ok = sum (fun w -> w.w_ok);
        coalesced = sum (fun w -> w.w_coalesced);
        shed_retries = sum (fun w -> w.w_shed);
        failures = sum (fun w -> w.w_failures);
        payload_bytes = sum (fun w -> w.w_bytes);
        elapsed_s;
        throughput_rps = (if elapsed_s > 0. then float_of_int requests /. elapsed_s else 0.);
        p50_ms = percentile latencies 0.5 *. 1000.;
        p99_ms = percentile latencies 0.99 *. 1000.;
      }

let stats_to_json s =
  J.to_string
    (J.Obj
       [
         ("requests", J.Int s.requests);
         ("ok", J.Int s.ok);
         ("coalesced", J.Int s.coalesced);
         ("shed_retries", J.Int s.shed_retries);
         ("failures", J.Int s.failures);
         ("payload_bytes", J.Int s.payload_bytes);
         ("elapsed_s", J.Float s.elapsed_s);
         ("throughput_rps", J.Float s.throughput_rps);
         ("p50_ms", J.Float s.p50_ms);
         ("p99_ms", J.Float s.p99_ms);
       ])
