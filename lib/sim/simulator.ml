module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module Activation = Noc_arch.Activation
module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_runs = Metrics.counter "sim.runs"
let m_slots = Metrics.counter "sim.slots"
let m_collisions = Metrics.counter "sim.collisions"

(* Event-core effectiveness: slots the selected core actually stepped
   vs. slots it proved idle and jumped over.  The reference tick loop
   steps everything, so its runs count only events. *)
let m_events = Metrics.counter "sim.events"
let m_skipped = Metrics.counter "sim.skipped_slots"

type conn_stats = {
  flow_id : int;
  src_core : int;
  dst_core : int;
  service : Route.service;
  offered_mbps : float;
  delivered_mbps : float;
  mean_latency_ns : float;
  max_latency_ns : float;
  bound_ns : float;
  final_backlog_bytes : float;
  max_backlog_bytes : float;
}

type result = {
  duration_slots : int;
  slot_ns : float;
  collisions : int;
  conns : conn_stats list;
}

type source =
  | Fluid
  | On_off of {
      period_slots : int;
      duty : float;
    }
  | Replay of Trace.t

type core =
  [ `Event     (* activation-indexed calendar core: skips idle slots *)
  | `Reference (* the pinned tick loop: steps every slot *) ]

type chunk = {
  arrival_ns : float;
  mutable ready_ns : float;  (* earliest instant the next hop may move it *)
  mutable bytes : float;
}

type conn_state = {
  idx : int;                       (* position in the route list *)
  route : Route.t;
  source : source;                 (* resolved once, not per slot *)
  starts : bool array;             (* GT: may we launch in this slot? *)
  gt_transit_ns : float;           (* launch-to-delivery time of a GT flit *)
  hop_queues : chunk Queue.t array; (* queue i: waiting to traverse link i;
                                       a single queue for GT and same-switch *)
  mutable delivered_bytes : float;
  mutable backlog : float;
  mutable backlog_peak : float;
  mutable latency_sum : float;
  mutable latency_max : float;
  mutable latency_bytes : float;
}

(* Per-link best-effort service state, in first-traversal order (the
   deterministic arbitration order both cores share). *)
type be_entry = {
  link : int;
  bconns : (conn_state * int) array; (* (connection, hop) traversing this link *)
  rr : int ref;                      (* round-robin arbitration pointer *)
  free_mask : int list;              (* slot phases the GT schedule leaves free *)
  mutable armed : bool;              (* event core: free_mask armed in the wheel? *)
}

(* All [sources] problems are rejected before the first slot runs:
   unknown flow ids (a typo would silently fall back to Fluid
   otherwise), malformed on/off shapes, invalid traces. *)
let validate_sources ~sources ~routes =
  List.iter
    (fun (flow_id, source) ->
      if not (List.exists (fun r -> r.Route.flow_id = flow_id) routes) then
        invalid_arg
          (Printf.sprintf "Simulator: source for unknown flow id %d" flow_id);
      match source with
      | Fluid -> ()
      | On_off { period_slots; duty } ->
        if period_slots <= 0 then invalid_arg "Simulator: non-positive burst period";
        if duty <= 0.0 || duty > 1.0 then invalid_arg "Simulator: duty must be in (0,1]"
      | Replay trace -> (
        match Trace.validate trace with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Simulator: bad trace: " ^ msg)))
    sources

let take_from_queue ~budget ~now_ns ~transit_ns queue ~deliver st =
  (* Move up to [budget] ready bytes out of [queue]; [deliver] consumes
     them (recording latency), otherwise the caller re-enqueues them
     downstream, ready one slot later (a flit advances one hop per
     slot). *)
  let moved = ref [] in
  let budget = ref budget in
  let blocked = ref false in
  while (not !blocked) && !budget > 1e-12 && not (Queue.is_empty queue) do
    let chunk = Queue.peek queue in
    if chunk.ready_ns > now_ns +. 1e-9 then blocked := true
    else begin
      let take = Float.min chunk.bytes !budget in
      chunk.bytes <- chunk.bytes -. take;
      budget := !budget -. take;
      if deliver then begin
        st.delivered_bytes <- st.delivered_bytes +. take;
        st.backlog <- st.backlog -. take;
        let lat = now_ns +. transit_ns -. chunk.arrival_ns in
        st.latency_sum <- st.latency_sum +. (lat *. take);
        st.latency_bytes <- st.latency_bytes +. take;
        if lat > st.latency_max then st.latency_max <- lat
      end
      else
        moved :=
          { arrival_ns = chunk.arrival_ns; ready_ns = now_ns +. transit_ns; bytes = take }
          :: !moved;
      if chunk.bytes <= 1e-12 then ignore (Queue.pop queue)
    end
  done;
  List.rev !moved

(* Shapes are validated once in [validate_sources]; here only the
   arithmetic remains. *)
let arrival_bytes ~source ~bw ~slot_ns ~t =
  match source with
  | Fluid -> bw /. 1000.0 *. slot_ns
  | Replay _ -> 0.0 (* replay arrivals are injected event by event *)
  | On_off { period_slots; duty } ->
    let on_slots = Float.max 1.0 (Float.round (duty *. float_of_int period_slots)) in
    let phase = t mod period_slots in
    if float_of_int phase < on_slots then
      (* the whole cycle's traffic arrives during the ON phase *)
      bw /. 1000.0 *. slot_ns *. (float_of_int period_slots /. on_slots)
    else 0.0

let push_arrival st ~arrival_ns ~ready_ns ~bytes =
  Queue.push { arrival_ns; ready_ns; bytes } st.hop_queues.(0);
  st.backlog <- st.backlog +. bytes;
  if st.backlog > st.backlog_peak then st.backlog_peak <- st.backlog

(* Inject every pending trace event falling inside this slot. *)
let drain_replay st pending ~now_ns ~horizon =
  let rec go () =
    match !pending with
    | e :: rest when e.Trace.at_ns < horizon ->
      pending := rest;
      push_arrival st ~arrival_ns:(Float.max e.Trace.at_ns now_ns) ~ready_ns:now_ns
        ~bytes:e.Trace.bytes;
      go ()
    | _ -> ()
  in
  go ()

(* One link's BE service for one slot: round-robin pick of a stream
   with queued traffic, then forward one slot payload of it — shared
   verbatim by both cores so their float operations agree bit for
   bit.  [on_idle] fires when every stream's queue is empty; the event
   core uses it to disarm the link.  [on_forward st hop] fires when
   chunks were pushed into [st]'s hop+1 queue. *)
let serve_be_link ~now_ns ~slot_ns ~payload_bytes entry ~on_idle ~on_forward =
  let arr = entry.bconns in
  let n = Array.length arr in
  let chosen = ref None in
  let i = ref 0 in
  while !chosen = None && !i < n do
    let idx = (!(entry.rr) + !i) mod n in
    let st, hop = arr.(idx) in
    if not (Queue.is_empty st.hop_queues.(hop)) then chosen := Some (idx, st, hop);
    incr i
  done;
  match !chosen with
  | None -> on_idle ()
  | Some (idx, st, hop) ->
    entry.rr := (idx + 1) mod n;
    let last = hop = Array.length st.hop_queues - 1 in
    if last then
      ignore
        (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns
           st.hop_queues.(hop) ~deliver:true st)
    else begin
      let moved =
        take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns st.hop_queues.(hop)
          ~deliver:false st
      in
      List.iter (fun c -> Queue.push c st.hop_queues.(hop + 1)) moved;
      if moved <> [] then on_forward st hop
    end

let simulate_with ~core ~sources ~config ~routes ~duration_slots =
  if duration_slots <= 0 then invalid_arg "Simulator.simulate: non-positive duration";
  validate_sources ~sources ~routes;
  let slots = config.Config.slots in
  let slot_ns = Config.slot_duration_ns config in
  let payload_bytes =
    float_of_int config.Config.slot_cycles *. float_of_int config.Config.link_width_bits /. 8.0
  in
  let act = Activation.build ~slots routes in
  let collisions = Activation.collisions act in
  let make_state idx r =
    let starts = Array.make slots false in
    if r.Route.service = Route.Gt then begin
      if r.Route.links = [] then Array.fill starts 0 slots true
      else List.iter (fun s -> starts.(((s mod slots) + slots) mod slots) <- true) r.Route.slot_starts
    end;
    let n_queues =
      match (r.Route.service, r.Route.links) with
      | Route.Gt, _ | _, [] -> 1
      | Route.Be, links -> List.length links
    in
    {
      idx;
      route = r;
      source = Option.value (List.assoc_opt r.Route.flow_id sources) ~default:Fluid;
      starts;
      gt_transit_ns = slot_ns +. (float_of_int (Route.hops r) *. slot_ns);
      hop_queues = Array.init n_queues (fun _ -> Queue.create ());
      delivered_bytes = 0.0;
      backlog = 0.0;
      backlog_peak = 0.0;
      latency_sum = 0.0;
      latency_max = 0.0;
      latency_bytes = 0.0;
    }
  in
  let states = List.mapi make_state routes in
  (* Pending replay events per connection, consumed in time order. *)
  let replays =
    List.filter_map
      (fun st -> match st.source with Replay trace -> Some (st, ref trace) | _ -> None)
      states
  in
  let gt_states = List.filter (fun st -> st.route.Route.service = Route.Gt) states in
  let be_states = List.filter (fun st -> st.route.Route.service = Route.Be) states in
  (* Per-link BE service state, in the activation index's first-traversal
     order — the one deterministic arbitration order of both cores. *)
  let be_entries =
    let per_link = Hashtbl.create 16 in
    List.iter
      (fun st ->
        List.iteri
          (fun hop link ->
            let prev = try Hashtbl.find per_link link with Not_found -> [] in
            Hashtbl.replace per_link link ((st, hop) :: prev))
          st.route.Route.links)
      be_states;
    Array.map
      (fun link ->
        {
          link;
          bconns = Array.of_list (List.rev (Hashtbl.find per_link link));
          rr = ref 0;
          free_mask = Activation.link_free_mask act ~link;
          armed = false;
        })
      (Activation.be_links act)
  in
  Metrics.incr m_runs;
  Metrics.incr ~by:duration_slots m_slots;
  Metrics.incr ~by:collisions m_collisions;

  (* --- the pinned reference core: tick every slot ----------------------- *)
  let run_reference () =
    let step t =
      let now_ns = float_of_int t *. slot_ns in
      let slot = t mod slots in
      (* Arrival of each connection's offered load (fluid or bursty). *)
      List.iter
        (fun st ->
          let arriving = arrival_bytes ~source:st.source ~bw:st.route.Route.bandwidth ~slot_ns ~t in
          if arriving > 0.0 then push_arrival st ~arrival_ns:now_ns ~ready_ns:now_ns ~bytes:arriving)
        states;
      (* Replay traces: inject every event falling inside this slot. *)
      List.iter
        (fun (st, pending) -> drain_replay st pending ~now_ns ~horizon:(now_ns +. slot_ns))
        replays;
      (* Guaranteed connections: a payload departs on each reserved start. *)
      List.iter
        (fun st ->
          if st.starts.(slot) then
            ignore
              (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:st.gt_transit_ns
                 st.hop_queues.(0) ~deliver:true st))
        gt_states;
      (* Same-switch best-effort: the local port forwards every slot. *)
      List.iter
        (fun st ->
          if st.route.Route.links = [] then
            ignore
              (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns
                 st.hop_queues.(0) ~deliver:true st))
        be_states;
      (* Best-effort over links: each link whose current slot is not
         GT-owned serves one BE connection (round robin). *)
      Array.iter
        (fun entry ->
          if not (Activation.gt_owned act ~link:entry.link ~slot) then
            serve_be_link ~now_ns ~slot_ns ~payload_bytes entry
              ~on_idle:(fun () -> ())
              ~on_forward:(fun _ _ -> ()))
        be_entries
    in
    (* Traced runs report slot progress in a handful of chunk spans (one
       box each in the timeline) instead of one span per slot, which
       would swamp the trace on long horizons; untraced runs keep the
       plain loop. *)
    if Tracer.enabled () then begin
      let chunk = max 1 ((duration_slots + 7) / 8) in
      let t = ref 0 in
      while !t < duration_slots do
        let stop = min duration_slots (!t + chunk) in
        Tracer.with_span ~cat:"sim"
          ~args:[ ("from_slot", Tracer.Int !t); ("to_slot", Tracer.Int stop) ]
          "sim:slots"
          (fun () ->
            for u = !t to stop - 1 do
              step u
            done);
        t := stop
      done
    end
    else
      for t = 0 to duration_slots - 1 do
        step t
      done;
    Metrics.incr ~by:duration_slots m_events
  in

  (* --- the event core: jump straight to the next slot with work --------- *)
  let run_event () =
    let states_arr = Array.of_list states in
    let wheel = Event_wheel.create ~period:slots in
    (* Where a push into a connection's queues must register demand:
       a backlogged GT connection wants its reserved starts, a
       same-switch one wants every slot, a multi-hop BE one wants the
       GT-free slots of the link serving the pushed hop. *)
    let entry_of_link = Hashtbl.create 16 in
    Array.iteri (fun i e -> Hashtbl.replace entry_of_link e.link i) be_entries;
    let targets =
      Array.map
        (fun st ->
          match (st.route.Route.service, st.route.Route.links) with
          | Route.Gt, [] | Route.Be, [] -> `Local
          | Route.Gt, _ ->
            let mask = ref [] in
            for s = slots - 1 downto 0 do
              if st.starts.(s) then mask := s :: !mask
            done;
            `Gt_mask !mask
          | Route.Be, links ->
            `Be_hops (Array.of_list (List.map (Hashtbl.find entry_of_link) links)))
        states_arr
    in
    let armed = Array.make (Array.length states_arr) false in
    let arm_state i =
      if not armed.(i) then begin
        armed.(i) <- true;
        match targets.(i) with
        | `Gt_mask mask -> Event_wheel.arm wheel mask
        | `Local -> Event_wheel.arm_always wheel
        | `Be_hops _ -> assert false
      end
    in
    let disarm_state i =
      if armed.(i) then
        match targets.(i) with
        | `Gt_mask mask ->
          armed.(i) <- false;
          Event_wheel.disarm wheel mask
        | `Local ->
          armed.(i) <- false;
          Event_wheel.disarm_always wheel
        | `Be_hops _ -> assert false
    in
    let arm_entry e =
      if not e.armed then begin
        e.armed <- true;
        Event_wheel.arm wheel e.free_mask
      end
    in
    let arm_hop st hop =
      match targets.(st.idx) with
      | `Be_hops entries -> arm_entry be_entries.(entries.(hop))
      | `Gt_mask _ | `Local -> arm_state st.idx
    in
    (* Arrival processes, resolved once.  The per-slot byte amounts are
       the exact expressions [arrival_bytes] evaluates, hoisted. *)
    let arrivals =
      Array.of_list
        (List.filter_map
           (fun st ->
             let bw = st.route.Route.bandwidth in
             match st.source with
             | Fluid ->
               let bytes = bw /. 1000.0 *. slot_ns in
               if bytes > 0.0 then Some (st, `Every_slot bytes) else None
             | On_off { period_slots = p; duty } ->
               let on_slots = Float.max 1.0 (Float.round (duty *. float_of_int p)) in
               let bytes = bw /. 1000.0 *. slot_ns *. (float_of_int p /. on_slots) in
               if bytes > 0.0 then Some (st, `On_off (p, int_of_float on_slots, bytes, ref false))
               else None
             | Replay _ -> None)
           states)
    in
    let be_local =
      Array.of_list (List.filter (fun st -> st.route.Route.links = []) be_states)
    in
    (* The first slot a trace event enters the NoC: the smallest t with
       [at_ns < horizon t], probed with the reference's own horizon
       expression so float rounding cannot disagree. *)
    let inject_slot at_ns =
      let est = at_ns /. slot_ns in
      if est > float_of_int duration_slots +. 1.0 then duration_slots
      else begin
        let s = ref (max 0 (int_of_float est - 2)) in
        while not (at_ns < (float_of_int !s *. slot_ns) +. slot_ns) do
          incr s
        done;
        !s
      end
    in
    (* Seed the calendar: fluid sources arrive every slot, on/off ones
       at slot 0 (phase 0 is always ON since on_slots >= 1), traces at
       their first event's slot. *)
    Array.iter
      (fun (_, kind) ->
        match kind with
        | `Every_slot _ -> Event_wheel.arm_always wheel
        | `On_off _ -> Event_wheel.schedule wheel 0)
      arrivals;
    List.iter
      (fun (_, pending) ->
        match !pending with
        | e :: _ -> Event_wheel.schedule wheel (inject_slot e.Trace.at_ns)
        | [] -> ())
      replays;
    let step t =
      let now_ns = float_of_int t *. slot_ns in
      let slot = t mod slots in
      Array.iter
        (fun (st, kind) ->
          match kind with
          | `Every_slot bytes ->
            push_arrival st ~arrival_ns:now_ns ~ready_ns:now_ns ~bytes;
            arm_hop st 0
          | `On_off (p, on, bytes, in_burst) ->
            if t mod p < on then begin
              push_arrival st ~arrival_ns:now_ns ~ready_ns:now_ns ~bytes;
              arm_hop st 0;
              (* A burst makes every slot active until its OFF edge, so
                 ride the always tier for its length (exact, not an
                 over-approximation) instead of chaining a one-shot per
                 ON slot — that churned the heap once per source per
                 slot. *)
              if not !in_burst then begin
                in_burst := true;
                Event_wheel.arm_always wheel
              end;
              if t mod p = on - 1 then begin
                in_burst := false;
                Event_wheel.disarm_always wheel;
                let nxt = t - (t mod p) + p in
                if nxt < duration_slots then Event_wheel.schedule wheel nxt
              end
            end)
        arrivals;
      List.iter
        (fun (st, pending) ->
          let horizon = now_ns +. slot_ns in
          match !pending with
          | e :: _ when e.Trace.at_ns < horizon ->
            drain_replay st pending ~now_ns ~horizon;
            arm_hop st 0;
            (match !pending with
            | e :: _ -> Event_wheel.schedule wheel (inject_slot e.Trace.at_ns)
            | [] -> ())
          | _ -> ())
        replays;
      Array.iter
        (fun pos ->
          let st = states_arr.(pos) in
          ignore
            (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:st.gt_transit_ns
               st.hop_queues.(0) ~deliver:true st);
          if Queue.is_empty st.hop_queues.(0) then disarm_state pos)
        (Activation.gt_starts_at act ~slot);
      Array.iter
        (fun st ->
          ignore
            (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns st.hop_queues.(0)
               ~deliver:true st);
          if Queue.is_empty st.hop_queues.(0) then disarm_state st.idx)
        be_local;
      Array.iter
        (fun ei ->
          let entry = be_entries.(ei) in
          serve_be_link ~now_ns ~slot_ns ~payload_bytes entry
            ~on_idle:(fun () ->
              if entry.armed then begin
                entry.armed <- false;
                Event_wheel.disarm wheel entry.free_mask
              end)
            ~on_forward:(fun st hop -> arm_hop st (hop + 1)))
        (Activation.be_free_at act ~slot)
    in
    let executed = ref 0 in
    let rec loop from =
      if from < duration_slots then
        match Event_wheel.next_active wheel ~from with
        | None -> ()
        | Some u when u >= duration_slots -> ()
        | Some u ->
          step u;
          incr executed;
          Event_wheel.drop_until wheel u;
          loop (u + 1)
    in
    if Tracer.enabled () then
      Tracer.with_span ~cat:"sim"
        ~args:[ ("duration_slots", Tracer.Int duration_slots) ]
        "sim:event-loop"
        (fun () -> loop 0)
    else loop 0;
    Metrics.incr ~by:!executed m_events;
    Metrics.incr ~by:(duration_slots - !executed) m_skipped
  in
  (match core with `Reference -> run_reference () | `Event -> run_event ());
  let horizon_ns = float_of_int duration_slots *. slot_ns in
  let finish st =
    {
      flow_id = st.route.Route.flow_id;
      src_core = st.route.Route.src_core;
      dst_core = st.route.Route.dst_core;
      service = st.route.Route.service;
      offered_mbps = st.route.Route.bandwidth;
      delivered_mbps = st.delivered_bytes /. horizon_ns *. 1000.0;
      mean_latency_ns =
        (if st.latency_bytes > 0.0 then st.latency_sum /. st.latency_bytes else 0.0);
      max_latency_ns = st.latency_max;
      bound_ns = Route.worst_case_latency_ns ~config st.route;
      final_backlog_bytes = st.backlog;
      max_backlog_bytes = st.backlog_peak;
    }
  in
  { duration_slots; slot_ns; collisions; conns = List.map finish states }

let within_contract ?(tolerance = 0.02) r =
  r.collisions = 0
  && List.for_all
       (fun c ->
         c.service = Route.Be
         || (c.delivered_mbps >= c.offered_mbps *. (1.0 -. tolerance)
            (* one slot of boundary slack on the analytic bound *)
            && c.max_latency_ns <= c.bound_ns +. r.slot_ns +. 1e-6))
       r.conns

let pp_result ppf r =
  Format.fprintf ppf "@[<v>simulated %d slots, %d collisions@ " r.duration_slots r.collisions;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "conn %d (%d->%d%s): offered %.1f delivered %.1f MB/s, lat mean %.1f max %.1f%s@."
        c.flow_id c.src_core c.dst_core
        (match c.service with Route.Gt -> "" | Route.Be -> ", BE")
        c.offered_mbps c.delivered_mbps c.mean_latency_ns c.max_latency_ns
        (match c.service with
        | Route.Gt -> Printf.sprintf " (bound %.1f) ns" c.bound_ns
        | Route.Be -> " ns (no bound)"))
    r.conns;
  Format.fprintf ppf "@]"

let simulate_sources ~sources ~config ~routes ~duration_slots =
  simulate_with ~core:`Event ~sources ~config ~routes ~duration_slots

let simulate ~config ~routes ~duration_slots =
  simulate_with ~core:`Event ~sources:[] ~config ~routes ~duration_slots
