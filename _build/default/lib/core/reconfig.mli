(** Dynamic re-configuration analysis (paper §3 / §6.4).

    When the SoC switches between use-cases of *different* groups, the
    NoC's paths and TDMA slot tables may be re-written during the
    switching window (hundreds of microseconds to milliseconds).  This
    module quantifies that re-configuration: which connections change
    path, how many slot-table entries must be written, and how long the
    rewrite takes through the configuration port — the designer checks
    this against the use-case switching budget.

    A slot-table entry is hardware state naming the connection (source
    and destination core, hop position) served in that slot on that
    link; two configurations agree on an entry when the same flow uses
    it the same way, so use-cases in one smooth-switching group need
    zero rewrites by construction. *)

type cost = {
  from_uc : int;
  to_uc : int;
  smooth : bool;       (** same group: re-configuration forbidden (and unneeded) *)
  paths_changed : int; (** core pairs routed in both use-cases whose paths differ *)
  shared_paths : int;  (** core pairs routed identically in both *)
  slot_writes : int;   (** (link, slot) entries that must be rewritten *)
  reconfiguration_ns : Noc_util.Units.latency;
      (** rewrite time through the configuration port *)
}

val setup_cycles : int
(** Fixed control-distribution overhead charged per switching
    (quiescing the old use-case, broadcasting the go signal). *)

val pair : Mapping.t -> from_uc:int -> to_uc:int -> cost
(** Cost of switching between two use-cases of a completed design.
    @raise Invalid_argument on out-of-range ids or [from_uc = to_uc]. *)

val analyze : Mapping.t -> cost list
(** All ordered use-case pairs, [from_uc < to_uc] ordering removed —
    costs are symmetric here, so each unordered pair appears once
    (as [from_uc < to_uc]). *)

val worst : Mapping.t -> cost option
(** The most expensive switching, if the design has at least two
    use-cases. *)

val pp : Format.formatter -> cost -> unit
