examples/parallel_modes.ml: Format List Noc_arch Noc_benchkit Noc_core Noc_power Noc_traffic Noc_util Printf
