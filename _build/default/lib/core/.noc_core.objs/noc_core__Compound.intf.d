lib/core/compound.mli: Noc_traffic
