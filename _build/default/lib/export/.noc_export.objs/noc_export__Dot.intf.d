lib/export/dot.mli: Noc_core
