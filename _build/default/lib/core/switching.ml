module Intgraph = Noc_graph.Intgraph
module Components = Noc_graph.Components

type t = { graph : Intgraph.t }

let check t u =
  if u < 0 || u >= Intgraph.node_count t.graph then
    invalid_arg "Switching: use-case id out of range"

let add_smooth t a b =
  check t a;
  check t b;
  if a = b then invalid_arg "Switching: a use-case cannot smooth-switch with itself";
  if not (Intgraph.mem_edge t.graph a b) then ignore (Intgraph.add_edge t.graph a b)

let create ~use_cases ~smooth =
  let t = { graph = Intgraph.create ~directed:false ~nodes:use_cases } in
  List.iter (fun (a, b) -> add_smooth t a b) smooth;
  t

let add_compound t compound =
  let cid = compound.Compound.use_case.Noc_traffic.Use_case.id in
  List.iter (fun m -> add_smooth t m cid) compound.Compound.members

let requires_smooth t a b =
  check t a;
  check t b;
  Intgraph.mem_edge t.graph a b

let groups t = Components.connected_components t.graph

let group_of t = Components.component_ids t.graph

let reconfigurable_switchings t =
  let ids = group_of t in
  let n = Array.length ids in
  let count = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if ids.(a) <> ids.(b) then incr count
    done
  done;
  !count

let pp ppf t =
  let gs = groups t in
  Format.fprintf ppf "@[<v>switching graph: %d use-cases, %d groups@ "
    (Intgraph.node_count t.graph) (List.length gs);
  List.iteri
    (fun i g ->
      Format.fprintf ppf "group %d: {%s}@ " i (String.concat "," (List.map string_of_int g)))
    gs;
  Format.fprintf ppf "@]"
