test/test_report.ml: Alcotest Array List Noc_arch Noc_benchkit Noc_core Noc_report Noc_traffic Printf
