lib/power/min_freq.ml: List Noc_arch Noc_core Noc_traffic
