type t = {
  rate_mbps : Noc_util.Units.bandwidth;
  latency_ns : Noc_util.Units.latency;
}

let of_reservation ~config ~starts ~hops =
  if starts = [] then invalid_arg "Service_curve.of_reservation: no reserved slots";
  let gap = Tdma.max_start_gap ~slots:config.Noc_config.slots ~starts in
  {
    rate_mbps = float_of_int (List.length starts) *. Noc_config.slot_bandwidth config;
    latency_ns = float_of_int (gap + hops) *. Noc_config.slot_duration_ns config;
  }

let of_route ~config (r : Route.t) =
  match (r.Route.service, r.Route.links) with
  | Route.Be, _ -> None
  | Route.Gt, [] ->
    (* local port: served every slot *)
    Some
      {
        rate_mbps = Noc_config.link_capacity config;
        latency_ns = Noc_config.slot_duration_ns config;
      }
  | Route.Gt, links ->
    Some (of_reservation ~config ~starts:r.Route.slot_starts ~hops:(List.length links))

let delay_bound_ns t ~burst_bytes ~rate_mbps =
  if burst_bytes < 0.0 then invalid_arg "Service_curve.delay_bound_ns: negative burst";
  if rate_mbps > t.rate_mbps +. 1e-9 then
    invalid_arg "Service_curve.delay_bound_ns: input rate exceeds the guaranteed rate";
  (* sigma bytes at rho MB/s = sigma/rho us = 1000*sigma/rho ns *)
  t.latency_ns +. (1000.0 *. burst_bytes /. t.rate_mbps)

let backlog_bound_bytes t ~burst_bytes ~rate_mbps =
  if burst_bytes < 0.0 then invalid_arg "Service_curve.backlog_bound_bytes: negative burst";
  if rate_mbps > t.rate_mbps +. 1e-9 then
    invalid_arg "Service_curve.backlog_bound_bytes: input rate exceeds the guaranteed rate";
  burst_bytes +. (rate_mbps /. 1000.0 *. t.latency_ns)

let on_off_burstiness ~mean_mbps ~period_ns ~duty =
  if duty <= 0.0 || duty > 1.0 then
    invalid_arg "Service_curve.on_off_burstiness: duty must be in (0,1]";
  if period_ns <= 0.0 then invalid_arg "Service_curve.on_off_burstiness: non-positive period";
  mean_mbps /. 1000.0 *. period_ns *. (1.0 -. duty)
