(* Parallel use-cases and compound modes (paper Sec 4 and Sec 6.5):
   how many use-cases can run in parallel on a given NoC, and at what
   clock frequency?

   Run with: dune exec examples/parallel_modes.exe *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Use_case = Noc_traffic.Use_case
module Compound = Noc_core.Compound
module Switching = Noc_core.Switching
module Mapping = Noc_core.Mapping
module Min_freq = Noc_power.Min_freq
module Syn = Noc_benchkit.Synthetic
module Table = Noc_util.Ascii_table

let () =
  (* A 20-core spread-traffic SoC with ten use-cases (the Fig 7c setup). *)
  let base = Syn.generate ~seed:777 ~params:Syn.spread_params ~use_cases:10 in

  (* Compound modes: disjoint sets of k use-cases running in parallel.
     Their bandwidths sum per core pair; latency bounds tighten. *)
  let sets k =
    let rec chunks from acc =
      if from + k > List.length base then List.rev acc
      else chunks (from + k) (List.init k (fun j -> from + j) :: acc)
    in
    if k <= 1 then [] else chunks 0 []
  in
  let all2, compounds2 = Compound.generate base ~parallel:(sets 2) in
  Format.printf "generated %d compound modes for pairwise parallelism:@."
    (List.length compounds2);
  List.iter
    (fun c ->
      let u = c.Compound.use_case in
      Format.printf "  %s: %d flows, %.0f MB/s total@." u.Use_case.name
        (Use_case.flow_count u) (Use_case.total_bandwidth u))
    compounds2;

  (* The switching graph: members of a compound must switch smoothly
     with it, so each chunk collapses into one configuration group. *)
  let sg = Switching.create ~use_cases:(List.length all2) ~smooth:[] in
  List.iter (Switching.add_compound sg) compounds2;
  Format.printf "@.%a@." Switching.pp sg;

  (* Size the NoC once for the most demanding parallelism, then report
     the clock each parallelism level needs on that same NoC. *)
  let k_max = 4 in
  let all_max, _ = Compound.generate base ~parallel:(sets k_max) in
  let groups_of ucs = List.mapi (fun i _ -> [ i ]) ucs in
  match Mapping.map_design ~groups:(groups_of all_max) all_max with
  | Error f ->
    Format.printf "sizing failed: %a@." Mapping.pp_failure f;
    exit 1
  | Ok sized ->
    let mesh = sized.Mapping.mesh in
    Format.printf "@.NoC sized for %d-way parallelism: %a@.@." k_max Mesh.pp mesh;
    let t = Table.create ~header:[ "parallel use-cases"; "required frequency (MHz)" ] in
    for k = 1 to k_max do
      let all, _ = Compound.generate base ~parallel:(sets k) in
      let freq =
        Min_freq.for_use_cases_on_mesh ~config:Config.default ~mesh ~groups:(groups_of all) all
      in
      Table.add_row t
        [
          string_of_int k;
          (match freq with Some f -> Printf.sprintf "%.0f" f | None -> "infeasible");
        ]
    done;
    Table.print t;
    print_endline "\n(the designer reads the row matching the product's parallelism budget)"
