let payload_bytes config =
  float_of_int config.Noc_config.slot_cycles
  *. float_of_int config.Noc_config.link_width_bits /. 8.0

let required_bytes ~config ~starts ~bw =
  if starts = [] then invalid_arg "Ni_buffer.required_bytes: no reserved slots";
  if bw <= 0.0 then invalid_arg "Ni_buffer.required_bytes: non-positive bandwidth";
  let gap_slots = Tdma.max_start_gap ~slots:config.Noc_config.slots ~starts in
  let gap_ns = float_of_int gap_slots *. Noc_config.slot_duration_ns config in
  (* bytes accumulating while the schedule is away, plus one payload of
     slack for the flit being serialised *)
  (bw /. 1000.0 *. gap_ns) +. payload_bytes config

let word_bytes config = float_of_int config.Noc_config.link_width_bits /. 8.0

let required_words ~config ~starts ~bw =
  int_of_float (ceil (required_bytes ~config ~starts ~bw /. word_bytes config))

let one_payload_words config =
  int_of_float (ceil (payload_bytes config /. word_bytes config))

let for_route ~config (r : Route.t) =
  match (r.Route.service, r.Route.links) with
  | Route.Be, _ | Route.Gt, [] -> one_payload_words config
  | Route.Gt, _ -> required_words ~config ~starts:r.Route.slot_starts ~bw:r.Route.bandwidth

let per_core_totals ~config ~cores routes =
  let totals = Array.make cores 0 in
  List.iter
    (fun r ->
      totals.(r.Route.src_core) <- totals.(r.Route.src_core) + for_route ~config r;
      totals.(r.Route.dst_core) <- totals.(r.Route.dst_core) + one_payload_words config)
    routes;
  totals
