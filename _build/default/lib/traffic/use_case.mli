(** A use-case: the communication of one application of the SoC
    (paper §1).  All use-cases of a design share the same set of cores
    but have independent flow sets and constraints. *)

type t = private {
  id : int;            (** index within the design's use-case list *)
  name : string;
  cores : int;         (** number of cores in the SoC *)
  flows : Flow.t list; (** at most one flow per (ordered pair, service class) *)
}

val create : id:int -> name:string -> cores:int -> Flow.t list -> t
(** Flows with the same ordered pair are merged (bandwidths summed,
    latency constraints min-ed), matching the compound-mode rule.
    @raise Invalid_argument when any flow fails [Flow.validate]. *)

val rename : t -> id:int -> name:string -> t

val flow_count : t -> int

val total_bandwidth : t -> Noc_util.Units.bandwidth
(** Sum of all flow bandwidths. *)

val max_bandwidth : t -> Noc_util.Units.bandwidth
(** Largest single-flow bandwidth; 0 when there are no flows. *)

val find_flow : t -> src:int -> dst:int -> Flow.t option
(** The first flow between the pair (the guaranteed one when both
    classes are present). *)

val guaranteed_flows : t -> Flow.t list

val best_effort_flows : t -> Flow.t list

val sorted_flows_desc : t -> Flow.t list
(** Flows in Algorithm 2's order (non-increasing bandwidth). *)

val core_degree : t -> int array
(** Per core, the number of flows it appears in (in + out). *)

val communicating_cores : t -> int list
(** Cores with at least one flow, increasing. *)

val pp : Format.formatter -> t -> unit
