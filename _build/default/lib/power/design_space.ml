module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Mapping = Noc_core.Mapping

type axes = {
  frequencies : Noc_util.Units.frequency list;
  slot_counts : int list;
  topologies : Mesh.kind list;
}

let default_axes =
  { frequencies = [ 250.0; 500.0; 1000.0 ]; slot_counts = [ 16; 32; 64 ]; topologies = [ Mesh.Mesh ] }

type point = {
  freq_mhz : Noc_util.Units.frequency;
  slots : int;
  topology : Mesh.kind;
  switches : int option;
  area_mm2 : Noc_util.Units.area option;
  power_mw : float option;
}

let explore ?(axes = default_axes) ~config ~groups use_cases =
  let run freq slots topology =
    let cfg = { config with Config.freq_mhz = freq; slots; topology } in
    match Mapping.map_design ~config:cfg ~groups use_cases with
    | Ok m ->
      {
        freq_mhz = freq;
        slots;
        topology;
        switches = Some (Mapping.switch_count m);
        area_mm2 = Some (Area_model.noc_area m);
        power_mw = Some (Power_model.noc_power m).Power_model.total_mw;
      }
    | Error _ ->
      { freq_mhz = freq; slots; topology; switches = None; area_mm2 = None; power_mw = None }
  in
  List.concat_map
    (fun topology ->
      List.concat_map
        (fun slots -> List.map (fun f -> run f slots topology) (List.sort compare axes.frequencies))
        (List.sort compare axes.slot_counts))
    axes.topologies

let dominates a b =
  (* a dominates b in (area, power) *)
  match (a.area_mm2, a.power_mw, b.area_mm2, b.power_mw) with
  | Some aa, Some ap, Some ba, Some bp -> aa <= ba && ap <= bp && (aa < ba || ap < bp)
  | _ -> false

let pareto points =
  let feasible = List.filter (fun p -> p.switches <> None) points in
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) feasible)) feasible

let print points =
  let front = pareto points in
  let on_front p = List.memq p front in
  let t =
    Noc_util.Ascii_table.create
      ~header:[ "topology"; "slots"; "freq (MHz)"; "switches"; "area (mm2)"; "power (mW)"; "pareto" ]
  in
  List.iter
    (fun p ->
      Noc_util.Ascii_table.add_row t
        [
          (match p.topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus");
          string_of_int p.slots;
          Printf.sprintf "%.0f" p.freq_mhz;
          (match p.switches with Some s -> string_of_int s | None -> "infeasible");
          (match p.area_mm2 with Some a -> Printf.sprintf "%.3f" a | None -> "-");
          (match p.power_mw with Some w -> Printf.sprintf "%.1f" w | None -> "-");
          (if p.switches <> None && on_front p then "*" else "");
        ])
    points;
  Noc_util.Ascii_table.print t
