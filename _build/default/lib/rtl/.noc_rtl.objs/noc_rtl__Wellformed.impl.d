lib/rtl/wellformed.ml: Buffer Hashtbl List Printf String
