module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module Result_cache = Noc_util.Result_cache

(* --- the process-wide store --------------------------------------------- *)

(* Created on first use, but not through [lazy]: a parallel sweep's
   first lookups arrive from several pool worker domains at once, and
   concurrently forcing one lazy raises [CamlinternalLazy.Undefined].
   Double-checked locking creates the store exactly once instead. *)
let store_cell : Result_cache.t option Atomic.t = Atomic.make None
let store_lock = Mutex.create ()

let force_store () =
  match Atomic.get store_cell with
  | Some s -> s
  | None ->
    Mutex.lock store_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock store_lock)
      (fun () ->
        match Atomic.get store_cell with
        | Some s -> s
        | None ->
          let s = Result_cache.create ~version:(Noc_util.Build_info.fingerprint ()) () in
          Atomic.set store_cell (Some s);
          s)

let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let at_exit_registered = Atomic.make false

let set_dir d =
  let s = force_store () in
  Result_cache.set_dir s d;
  if d <> None && not (Atomic.exchange at_exit_registered true) then
    at_exit (fun () -> Result_cache.persist_stats s)

let dir () = match Atomic.get store_cell with Some s -> Result_cache.dir s | None -> None

let stats () =
  if Atomic.get store_cell <> None then Result_cache.stats (force_store ())
  else Result_cache.zero_stats

let flush () =
  match Atomic.get store_cell with
  | Some s -> Result_cache.persist_stats s
  | None -> ()


(* --- canonical problem digest ------------------------------------------- *)

let kind_token = function Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus"

(* Fixed-width binary fields with length prefixes: unambiguous (so
   distinct problems cannot collide before hashing), exact for floats
   (IEEE bits, no formatting), and cheap — this digest runs once per
   attempt on sweep hot paths, where a Printf-based rendering was
   slower than the cache hit it keyed. *)
let problem_digest ~config ~engine ~groups use_cases =
  let b = Buffer.create 4096 in
  let add_i i = Buffer.add_int64_le b (Int64.of_int i) in
  let add_f x = Buffer.add_int64_le b (Int64.bits_of_float x) in
  Buffer.add_string b "nocmap-problem 2";
  add_f config.Config.freq_mhz;
  add_i config.Config.link_width_bits;
  add_i config.Config.slots;
  add_i config.Config.slot_cycles;
  add_i config.Config.nis_per_switch;
  add_i (if config.Config.constrain_ni_links then 1 else 0);
  add_i config.Config.max_mesh_dim;
  add_i (match config.Config.routing with Config.Min_cost -> 0 | Config.Xy -> 1);
  add_i (match config.Config.topology with Mesh.Mesh -> 0 | Mesh.Torus -> 1);
  add_f config.Config.placement_hw_factor;
  add_f config.Config.placement_spread_factor;
  add_i (match engine with Mapping.Indexed -> 0 | Mapping.Reference -> 1);
  add_i (List.length groups);
  List.iter
    (fun g ->
      add_i (List.length g);
      List.iter add_i g)
    groups;
  add_i (List.length use_cases);
  List.iter
    (fun uc ->
      add_i uc.Use_case.cores;
      add_i (List.length uc.Use_case.flows);
      List.iter
        (fun f ->
          add_i f.Flow.src;
          add_i f.Flow.dst;
          add_f f.Flow.bandwidth;
          add_f f.Flow.latency_ns;
          add_i (match f.Flow.service with Flow.Guaranteed -> 0 | Flow.Best_effort -> 1))
        uc.Use_case.flows)
    use_cases;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* A plain grid is identified by (kind, width, height); [with_express]
   strictly adds links, so a matching link count proves there are none.
   Express meshes get a distinct key from their endpoint list — their
   results are never stored (the codec cannot represent them), but the
   key must not collide with the grid's. *)
let mesh_key mesh =
  let kind = Mesh.kind mesh and w = Mesh.width mesh and h = Mesh.height mesh in
  let plain = Mesh.create_kind ~kind ~width:w ~height:h in
  if Mesh.link_count mesh = Mesh.link_count plain then
    Printf.sprintf "grid:%s:%d:%d" (kind_token kind) w h
  else begin
    let b = Buffer.create 256 in
    for l = 0 to Mesh.link_count mesh - 1 do
      let s, d = Mesh.link_endpoints mesh l in
      Buffer.add_string b (Printf.sprintf "%d>%d;" s d)
    done;
    Printf.sprintf "express:%s:%d:%d:%s" (kind_token kind) w h
      (Digest.to_hex (Digest.string (Buffer.contents b)))
  end

let grid_key ~topology ~width ~height =
  Printf.sprintf "grid:%s:%d:%d" (kind_token topology) width height

(* --- result <-> payload -------------------------------------------------- *)

let encode_result = function
  | Ok m -> Option.map (fun payload -> "ok\n" ^ payload) (Mapping_codec.encode m)
  | Error msg -> Some ("err\n" ^ msg)

let decode_result text =
  let after prefix = String.sub text (String.length prefix) (String.length text - String.length prefix) in
  if String.starts_with ~prefix:"ok\n" text then
    match Mapping_codec.decode (after "ok\n") with
    | Ok m -> Some (Ok m)
    | Error _ -> None
  else if String.starts_with ~prefix:"err\n" text then Some (Error (after "err\n"))
  else None

(* Decoded-value memo in front of the string store: replaying a hit
   then costs a few array blits ({!Resources.copy}) instead of
   re-parsing and re-reserving tens of KB of text — the difference
   between a warm sweep dominated by lookups and one dominated by
   decoding.  Only consulted after the string tier confirms the key
   (so the LRU recency and hit counters stay accurate), and only
   trusted because encoding is canonical: one key has one payload, so
   the memoized value always matches the stored bytes.  Every return
   is a fresh copy — callers never alias the memo's states. *)
let copy_mapping (m : Mapping.t) =
  {
    m with
    Mapping.placement = Array.copy m.Mapping.placement;
    states = Array.map Resources.copy m.Mapping.states;
  }

(* The decoded-value memo is a digest tier of its own: a hit here
   skips the codec entirely, not just the solve. *)
let m_decoded_hits = Noc_obs.Metrics.counter "cache.decoded_hits"

let decoded : (string, Mapping.t) Hashtbl.t = Hashtbl.create 64
let decoded_mutex = Mutex.create ()
let decoded_capacity = 256

let decoded_find key =
  Mutex.lock decoded_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock decoded_mutex)
    (fun () -> Option.map copy_mapping (Hashtbl.find_opt decoded key))

let decoded_add key m =
  Mutex.lock decoded_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock decoded_mutex)
    (fun () ->
      if Hashtbl.length decoded >= decoded_capacity then Hashtbl.reset decoded;
      Hashtbl.replace decoded key (copy_mapping m))

let decoded_clear () =
  Mutex.lock decoded_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock decoded_mutex)
    (fun () -> Hashtbl.reset decoded)

let clear () =
  decoded_clear ();
  Result_cache.clear (force_store ())

let lookup_result s key =
  match Result_cache.find s key with
  | None -> None
  | Some text -> (
    match decoded_find key with
    | Some m ->
      Noc_obs.Metrics.incr m_decoded_hits;
      Some (Ok m)
    | None -> (
      match decode_result text with
      | Some (Ok m) ->
        decoded_add key m;
        Some (Ok m)
      | other -> other))

let store_result s key result =
  match encode_result result with
  | None -> ()
  | Some payload ->
    Result_cache.add s key payload;
    (match result with Ok m -> decoded_add key m | Error _ -> ())

let cached key compute =
  if not (enabled ()) then compute ()
  else begin
    let s = force_store () in
    match lookup_result s key with
    | Some result -> result
    | None ->
      let result = compute () in
      store_result s key result;
      result
  end

(* --- map_design hooks ---------------------------------------------------- *)

let attempt_key digest ~topology ~width ~height =
  digest ^ "|attempt|" ^ grid_key ~topology ~width ~height

let refuted_key digest ~topology ~width ~height =
  digest ^ "|refuted|" ^ grid_key ~topology ~width ~height

let design_cache ?(config = Config.default) ?(engine = Mapping.Indexed) ~groups use_cases =
  if not (enabled ()) then None
  else begin
    let s = force_store () in
    let digest = problem_digest ~config ~engine ~groups use_cases in
    let topology = config.Config.topology in
    Some
      {
        Mapping.lookup =
          (fun ~width ~height ->
            lookup_result s (attempt_key digest ~topology ~width ~height));
        store =
          (fun ~width ~height result ->
            store_result s (attempt_key digest ~topology ~width ~height) result);
        refuted =
          (fun ~width ~height ->
            Result_cache.find s (refuted_key digest ~topology ~width ~height));
        record_refuted =
          (fun ~width ~height why ->
            Result_cache.add s (refuted_key digest ~topology ~width ~height) why);
      }
  end

(* --- cached single-attempt wrappers -------------------------------------- *)

let attempt ?(engine = Mapping.Indexed) ~config ~mesh ~groups use_cases =
  let compute () = Mapping.map_attempt ~engine ~config ~mesh ~groups use_cases in
  if not (enabled ()) then compute ()
  else
    let digest = problem_digest ~config ~engine ~groups use_cases in
    cached (digest ^ "|attempt|" ^ mesh_key mesh) compute

let on_mesh ?(bias = Mapping.Compact) ?(engine = Mapping.Indexed) ~config ~mesh ~groups
    use_cases =
  let compute () = Mapping.map_on_mesh ~bias ~engine ~config ~mesh ~groups use_cases in
  if not (enabled ()) then compute ()
  else
    let digest = problem_digest ~config ~engine ~groups use_cases in
    let bias_tok = match bias with Mapping.Compact -> "compact" | Mapping.Spread -> "spread" in
    cached (digest ^ "|on_mesh|" ^ bias_tok ^ "|" ^ mesh_key mesh) compute

let with_placement ?(engine = Mapping.Indexed) ~config ~mesh ~groups ~placement use_cases =
  let compute () =
    Mapping.map_with_placement ~engine ~config ~mesh ~groups ~placement use_cases
  in
  if not (enabled ()) then compute ()
  else
    let digest = problem_digest ~config ~engine ~groups use_cases in
    let pl =
      Digest.to_hex
        (Digest.string
           (String.concat ","
              (Array.to_list (Array.map string_of_int placement))))
    in
    cached (digest ^ "|placed|" ^ pl ^ "|" ^ mesh_key mesh) compute
