(* Dedicated Reconfig coverage: smooth-group pairs cost nothing by
   construction (the shared configuration is the point of grouping),
   switching costs are symmetric in the pair, and pair rejects
   out-of-range or degenerate ids. *)

module DF = Noc_core.Design_flow
module Reconfig = Noc_core.Reconfig
module Syn = Noc_benchkit.Synthetic

let small_params = { Syn.spread_params with Syn.cores = 8; flows_lo = 3; flows_hi = 8 }

let design ?(smooth = []) ~seed n =
  let ucs = Syn.generate ~seed ~params:small_params ~use_cases:n in
  let spec = { (DF.spec_of_use_cases ~name:"reconfig" ucs) with DF.smooth } in
  match DF.run spec with
  | Ok d -> Some d.DF.mapping
  | Error _ -> None

let prop_smooth_pairs_free =
  QCheck.Test.make ~name:"smooth pair: zero slot writes, zero path changes" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match design ~smooth:[ (0, 1) ] ~seed 3 with
      | None -> QCheck.assume_fail () (* smooth grouping made this seed infeasible *)
      | Some m ->
        let c = Reconfig.pair m ~from_uc:0 ~to_uc:1 in
        c.Reconfig.smooth
        && c.Reconfig.slot_writes = 0
        && c.Reconfig.paths_changed = 0
        && c.Reconfig.reconfiguration_ns = 0.0)

let prop_costs_symmetric =
  QCheck.Test.make ~name:"pair costs are symmetric in the pair" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      match design ~seed 3 with
      | None -> QCheck.assume_fail ()
      | Some m ->
        List.for_all
          (fun (a, b) ->
            let f = Reconfig.pair m ~from_uc:a ~to_uc:b in
            let r = Reconfig.pair m ~from_uc:b ~to_uc:a in
            f.Reconfig.from_uc = a && f.Reconfig.to_uc = b && r.Reconfig.from_uc = b
            && r.Reconfig.to_uc = a
            && f.Reconfig.smooth = r.Reconfig.smooth
            && f.Reconfig.paths_changed = r.Reconfig.paths_changed
            && f.Reconfig.shared_paths = r.Reconfig.shared_paths
            && f.Reconfig.slot_writes = r.Reconfig.slot_writes
            && f.Reconfig.reconfiguration_ns = r.Reconfig.reconfiguration_ns)
          [ (0, 1); (0, 2); (1, 2) ])

let test_pair_raises () =
  let m =
    match design ~seed:7 2 with Some m -> m | None -> Alcotest.fail "seed 7 must map"
  in
  let raises name f =
    match f () with
    | (_ : Reconfig.cost) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "negative from" (fun () -> Reconfig.pair m ~from_uc:(-1) ~to_uc:0);
  raises "to out of range" (fun () -> Reconfig.pair m ~from_uc:0 ~to_uc:2);
  raises "from out of range" (fun () -> Reconfig.pair m ~from_uc:2 ~to_uc:0);
  raises "equal ids" (fun () -> Reconfig.pair m ~from_uc:1 ~to_uc:1)

let test_analyze_matches_pair () =
  let m =
    match design ~smooth:[ (0, 1) ] ~seed:11 3 with
    | Some m -> m
    | None -> Alcotest.fail "seed 11 must map"
  in
  let costs = Reconfig.analyze m in
  Alcotest.(check int) "one cost per unordered pair" 3 (List.length costs);
  List.iter
    (fun (c : Reconfig.cost) ->
      Alcotest.(check bool) "analyze orders from < to" true (c.Reconfig.from_uc < c.Reconfig.to_uc);
      let direct = Reconfig.pair m ~from_uc:c.Reconfig.from_uc ~to_uc:c.Reconfig.to_uc in
      Alcotest.(check int) "slot writes agree" direct.Reconfig.slot_writes c.Reconfig.slot_writes)
    costs

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "reconfig"
    [
      ( "reconfig",
        [
          qcheck prop_smooth_pairs_free;
          qcheck prop_costs_symmetric;
          Alcotest.test_case "pair raises on bad ids" `Quick test_pair_raises;
          Alcotest.test_case "analyze agrees with pair" `Quick test_analyze_matches_pair;
        ] );
    ]
