(** Small numeric helpers shared by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]]. *)

val clamp_int : lo:int -> hi:int -> int -> int

val round_to : digits:int -> float -> float
(** Round to the given number of decimal digits. *)

val percent : part:float -> whole:float -> float
(** [percent ~part ~whole] = 100 * part / whole; 0 when [whole = 0]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-difference comparison, default [eps = 1e-9]. *)

val linspace : lo:float -> hi:float -> n:int -> float list
(** [n] evenly spaced values from [lo] to [hi] inclusive; requires
    [n >= 2]. *)
