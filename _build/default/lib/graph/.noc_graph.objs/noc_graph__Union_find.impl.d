lib/graph/union_find.ml: Array Hashtbl List Option
