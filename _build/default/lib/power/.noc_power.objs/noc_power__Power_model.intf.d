lib/power/power_model.mli: Noc_core Noc_util
