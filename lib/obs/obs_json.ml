let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "0"
  | _ ->
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    let s = if float_of_string shorter = f then shorter else s in
    (* Bare "1e-05" or "42" are valid JSON numbers already. *)
    s
