(** Analytic switch-area model (0.13 um class).

    Substitutes the paper's back-annotated layout data (Fig 7a): the
    drivers of switch area are the crossbar (quadratic in port count),
    the TDMA slot tables and buffers (linear in slot count and ports),
    and timing-driven sizing, which inflates cells superlinearly as the
    clock approaches the achievable maximum.  Constants are calibrated
    so that a 5-port, 16-slot switch at 500 MHz lands near the 0.175
    mm2 published for Aethereal-class switches in 130 nm. *)

val f_max_mhz : Noc_util.Units.frequency
(** Highest clock the model allows (2.6 GHz; the Fig 7a sweep stops at
    2 GHz, where sizing inflation is noticeable but not pathological). *)

val switch_area :
  config:Noc_arch.Noc_config.t -> arity:int -> Noc_util.Units.area
(** Area of one switch with [arity] ports (inter-switch links plus NI
    ports) at the configuration's frequency.
    @raise Invalid_argument when the frequency exceeds {!f_max_mhz} or
    the arity is not positive. *)

val switch_arity : Noc_core.Mapping.t -> int -> int
(** Ports of a switch in a completed design: its directed outgoing
    inter-switch links plus the NIs placed on it. *)

val noc_area : Noc_core.Mapping.t -> Noc_util.Units.area
(** Total switch area of the designed NoC (the paper's Fig 7a metric:
    the sum of the area of all switches; NI area is accounted to the
    cores). *)
