type t = {
  directed : bool;
  adj : (int * int) list array; (* per node, reversed insertion order *)
  mutable edges : (int * int * int) list; (* (u, v, id), reversed *)
  mutable edge_count : int;
  mutable next_id : int;
}

let create ~directed ~nodes =
  if nodes < 0 then invalid_arg "Intgraph.create: negative node count";
  { directed; adj = Array.make nodes []; edges = []; edge_count = 0; next_id = 0 }

let directed t = t.directed
let node_count t = Array.length t.adj
let edge_count t = t.edge_count

let check_node t u =
  if u < 0 || u >= Array.length t.adj then invalid_arg "Intgraph: node out of range"

let add_edge t ?id u v =
  check_node t u;
  check_node t v;
  let eid = match id with Some i -> i | None -> t.next_id in
  t.next_id <- max t.next_id (eid + 1);
  t.adj.(u) <- (v, eid) :: t.adj.(u);
  if (not t.directed) && u <> v then t.adj.(v) <- (u, eid) :: t.adj.(v);
  t.edges <- (u, v, eid) :: t.edges;
  t.edge_count <- t.edge_count + 1;
  eid

let succ t u =
  check_node t u;
  List.rev t.adj.(u)

let iter_succ t u f =
  check_node t u;
  List.iter (fun (v, eid) -> f v eid) (List.rev t.adj.(u))

let degree t u =
  check_node t u;
  List.length t.adj.(u)

let mem_edge t u v =
  check_node t u;
  check_node t v;
  List.exists (fun (w, _) -> w = v) t.adj.(u)

let fold_edges t ~init ~f =
  List.fold_left (fun acc (u, v, eid) -> f acc u v eid) init (List.rev t.edges)
