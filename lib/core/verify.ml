module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Slot_table = Noc_arch.Slot_table
module Turn_model = Noc_arch.Turn_model
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

type violation = {
  use_case : int;
  src_core : int;
  dst_core : int;
  kind : string;
  detail : string;
}

type report = {
  checks : int;
  violations : violation list;
}

let ok r = r.violations = []

let verify ?only (m : Mapping.t) use_cases =
  let config = m.Mapping.config in
  let mesh = m.Mapping.mesh in
  (* [only]: restrict the per-use-case checks (and the group checks to
     groups containing a selected member) — global invariants still
     run.  The incremental remapper uses this to re-verify just the
     freshly-routed components; retained components' inputs are
     byte-identical to the old design's, so their check outcomes are
     the old report's. *)
  let selected =
    match only with
    | None -> fun _ -> true
    | Some ids ->
      let tbl = Hashtbl.create (List.length ids) in
      List.iter (fun i -> Hashtbl.replace tbl i ()) ids;
      Hashtbl.mem tbl
  in
  let use_cases = List.filter (fun u -> selected u.Use_case.id) use_cases in
  (* Routes indexed by use-case once: the per-flow lookup below would
     otherwise scan the whole route list for every flow. *)
  let routes_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let uc = r.Route.use_case in
        Hashtbl.replace tbl uc
          (r :: Option.value (Hashtbl.find_opt tbl uc) ~default:[]))
      m.Mapping.routes;
    fun uc -> List.rev (Option.value (Hashtbl.find_opt tbl uc) ~default:[])
  in
  let checks = ref 0 in
  let violations = ref [] in
  let fail ~use_case ~src_core ~dst_core kind detail =
    violations := { use_case; src_core; dst_core; kind; detail } :: !violations
  in
  let check ~use_case ~src_core ~dst_core kind cond detail =
    incr checks;
    if not cond then fail ~use_case ~src_core ~dst_core kind (detail ())
  in
  let slot_bw = Config.slot_bandwidth config in
  List.iter
    (fun u ->
      let uid = u.Use_case.id in
      let state = m.Mapping.states.(uid) in
      let own_routes = routes_of uid in
      List.iter
        (fun f ->
          let src = f.Flow.src and dst = f.Flow.dst in
          let here = check ~use_case:uid ~src_core:src ~dst_core:dst in
          let service = if Flow.is_guaranteed f then Route.Gt else Route.Be in
          let matching =
            List.filter
              (fun r ->
                r.Route.src_core = src && r.Route.dst_core = dst
                && r.Route.service = service)
              own_routes
          in
          here "route-exists"
            (List.length matching = 1)
            (fun () -> Printf.sprintf "%d routes found" (List.length matching));
          match matching with
          | [ r ] ->
            here "placement"
              (m.Mapping.placement.(src) = r.Route.src_switch
              && m.Mapping.placement.(dst) = r.Route.dst_switch)
              (fun () -> "route endpoints disagree with the core placement");
            (* Path continuity: the links chain src_switch to dst_switch. *)
            let continuous =
              let rec walk at = function
                | [] -> at = r.Route.dst_switch
                | l :: rest ->
                  let a, b = Mesh.link_endpoints mesh l in
                  a = at && walk b rest
              in
              walk r.Route.src_switch r.Route.links
            in
            here "path" continuous (fun () -> "path is not a connected chain");
            if r.Route.service = Route.Be then
              (* best effort: no reservation allowed, nothing to check *)
              here "be-no-slots" (r.Route.slot_starts = [])
                (fun () -> "a best-effort route must not hold slot reservations")
            else begin
            if r.Route.links <> [] then begin
              let granted = float_of_int (List.length r.Route.slot_starts) *. slot_bw in
              here "bandwidth"
                (granted +. 1e-9 >= f.Flow.bandwidth)
                (fun () ->
                  Printf.sprintf "granted %.1f MB/s < required %.1f MB/s" granted
                    f.Flow.bandwidth);
              (* The use-case's own tables must own every reserved slot. *)
              let owned =
                let rec hops start i = function
                  | [] -> true
                  | l :: rest ->
                    (match Slot_table.owner (Resources.table state l) (start + i) with
                    | Some _ -> hops start (i + 1) rest
                    | None -> false)
                in
                List.for_all (fun start -> hops start 0 r.Route.links) r.Route.slot_starts
              in
              here "slots-owned" owned (fun () -> "a reserved slot is free in the table")
            end;
            if r.Route.links <> [] && r.Route.slot_starts = [] then
              here "latency" false (fun () -> "no slots reserved, latency unbounded")
            else begin
              let lat = Route.worst_case_latency_ns ~config r in
              here "latency"
                (lat <= f.Flow.latency_ns +. 1e-9)
                (fun () ->
                  Printf.sprintf "worst-case %.1f ns > bound %.1f ns" lat f.Flow.latency_ns)
            end
            end
          | _ -> ())
        u.Use_case.flows)
    use_cases;
  (* NI capacity: no switch hosts more cores than it has NIs. *)
  (let counts = Hashtbl.create 16 in
   Array.iter
     (fun sw ->
       Hashtbl.replace counts sw (1 + Option.value (Hashtbl.find_opt counts sw) ~default:0))
     m.Mapping.placement;
   Hashtbl.iter
     (fun sw n ->
       incr checks;
       if n > config.Config.nis_per_switch then
         fail ~use_case:(-1) ~src_core:(-1) ~dst_core:(-1) "ni-capacity"
           (Printf.sprintf "switch %d hosts %d cores but has %d NIs" sw n
              config.Config.nis_per_switch))
     counts);
  (* Deadlock freedom, per use-case configuration. *)
  List.iter
    (fun u ->
      let uid = u.Use_case.id in
      incr checks;
      let routes = routes_of uid in
      if not (Turn_model.is_deadlock_free ~links:(Mesh.link_count mesh) ~routes) then
        fail ~use_case:uid ~src_core:(-1) ~dst_core:(-1) "deadlock"
          "channel dependency graph has a cycle")
    use_cases;
  (* Shared configuration inside each smooth-switching group: slot
     occupancy patterns must be identical across members. *)
  List.iter
    (fun group ->
      match List.filter selected group with
      | [] | [ _ ] -> ()
      | first :: rest ->
        let occupancy uc l =
          let table = Resources.table m.Mapping.states.(uc) l in
          List.init (Slot_table.slots table) (fun i -> not (Slot_table.is_free table i))
        in
        List.iter
          (fun other ->
            incr checks;
            let same =
              let ok = ref true in
              for l = 0 to Mesh.link_count mesh - 1 do
                if occupancy first l <> occupancy other l then ok := false
              done;
              !ok
            in
            if not same then
              fail ~use_case:other ~src_core:(-1) ~dst_core:(-1) "group-config"
                (Printf.sprintf "slot occupancy differs from group leader (uc %d)" first))
          rest)
    m.Mapping.groups;
  { checks = !checks; violations = List.rev !violations }

let pp_report ppf r =
  if ok r then Format.fprintf ppf "verification OK (%d checks)" r.checks
  else begin
    Format.fprintf ppf "@[<v>verification FAILED (%d checks, %d violations):@ " r.checks
      (List.length r.violations);
    List.iter
      (fun v ->
        Format.fprintf ppf "uc %d flow %d->%d [%s]: %s@ " v.use_case v.src_core v.dst_core
          v.kind v.detail)
      r.violations;
    Format.fprintf ppf "@]"
  end
