module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_batches = Metrics.counter "pool.batches"
let m_tasks = Metrics.counter "pool.tasks"
let m_stolen = Metrics.counter "pool.stolen_tasks"
let g_workers = Metrics.gauge "pool.workers"
let g_queue_depth = Metrics.gauge "pool.queue_depth"
let g_busy = Metrics.gauge "pool.busy_workers"
let g_utilization = Metrics.gauge "pool.utilization"

let default_jobs_ref = ref (max 1 (Domain.recommended_domain_count ()))

let set_default_jobs n = default_jobs_ref := max 1 n

let default_jobs () = !default_jobs_ref

(* Workers mark their domain so that a task submitting a nested batch
   (a sweep point running its own mesh-size speculation, say) degrades
   to an inline sequential run instead of deadlocking on the queue. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let effective_jobs ?jobs () =
  if Domain.DLS.get in_worker then 1
  else max 1 (match jobs with Some j -> j | None -> default_jobs ())

(* One batch = one array of tasks claimed chunk-by-chunk through an
   atomic cursor.  [run_task i] executes task [i] and records its
   result or exception; the batch is done when [completed] reaches
   [n].  [joined] caps how many pool workers pile onto the batch so a
   small [~jobs] on a big pool behaves as asked. *)
type batch = {
  id : int;
  run_task : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  helpers_wanted : int;
  joined : int Atomic.t;
  mutable finished : bool;
}

let mutex = Mutex.create ()

let work_cond = Condition.create () (* workers: a batch was published *)

let done_cond = Condition.create () (* submitters: a batch finished *)

let current : batch option ref = ref None

let next_batch_id = ref 0

let shutting_down = ref false

let worker_handles : unit Domain.t list ref = ref []

(* Domains currently draining a chunk of some batch, mirrored into the
   [pool.busy_workers] gauge (a gauge cell has no atomic add, so the
   count lives here). *)
let busy_count = Atomic.make 0

let drain ~helper b =
  (* Anyone draining — pool worker or submitter — must run nested
     batches inline: a task that re-entered [run_batch] here would wait
     on a batch that cannot finish while its own chunk is unfinished.
     Save/restore so the submitting domain regains full parallelism
     between batches. *)
  let was_in_worker = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Metrics.set g_busy (float_of_int (Atomic.fetch_and_add busy_count 1 + 1));
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add b.next b.chunk in
    if start >= b.n then continue := false
    else begin
      let stop = min b.n (start + b.chunk) in
      (* Tasks not yet claimed by anyone: the live queue depth. *)
      Metrics.set g_queue_depth (float_of_int (max 0 (b.n - stop)));
      (* A chunk claimed by a pool worker (rather than the submitting
         domain) is a steal: work that would otherwise have run on the
         submitter.  Per-worker chunk spans give the trace one row per
         domain in Perfetto. *)
      if helper then Metrics.incr ~by:(stop - start) m_stolen;
      let run_chunk () =
        for i = start to stop - 1 do
          b.run_task i
        done
      in
      if Tracer.enabled () then
        Tracer.with_span ~cat:"pool"
          ~args:
            [
              ("batch", Tracer.Int b.id);
              ("from", Tracer.Int start);
              ("to", Tracer.Int stop);
              ("stolen", Tracer.Bool helper);
            ]
          "pool:chunk" run_chunk
      else run_chunk ();
      let finished_now = Atomic.fetch_and_add b.completed (stop - start) + (stop - start) in
      if finished_now = b.n then begin
        Mutex.lock mutex;
        b.finished <- true;
        Condition.broadcast done_cond;
        Mutex.unlock mutex
      end
    end
  done;
  Metrics.set g_busy (float_of_int (max 0 (Atomic.fetch_and_add busy_count (-1) - 1)));
  Domain.DLS.set in_worker was_in_worker

let worker_body () =
  Domain.DLS.set in_worker true;
  let last_seen = ref (-1) in
  Mutex.lock mutex;
  while not !shutting_down do
    match !current with
    | Some b when b.id <> !last_seen && not b.finished ->
      last_seen := b.id;
      if Atomic.fetch_and_add b.joined 1 < b.helpers_wanted then begin
        Mutex.unlock mutex;
        drain ~helper:true b;
        Mutex.lock mutex
      end
    | _ -> Condition.wait work_cond mutex
  done;
  Mutex.unlock mutex

let ensure_workers wanted =
  Mutex.lock mutex;
  shutting_down := false;
  let have = List.length !worker_handles in
  for _ = have + 1 to wanted do
    worker_handles := Domain.spawn worker_body :: !worker_handles
  done;
  Metrics.set g_workers (float_of_int (List.length !worker_handles));
  Mutex.unlock mutex

let shutdown () =
  Mutex.lock mutex;
  let handles = !worker_handles in
  worker_handles := [];
  shutting_down := true;
  Condition.broadcast work_cond;
  Mutex.unlock mutex;
  List.iter Domain.join handles;
  Mutex.lock mutex;
  shutting_down := false;
  Mutex.unlock mutex

let () = at_exit shutdown

(* Publish a batch, help drain it, wait for the stragglers.  Batches
   are serialized: only the main domain submits (workers run nested
   batches inline), but tests may race submissions, so queue politely
   on [done_cond]. *)
let run_batch ~helpers ~n ~chunk run_task =
  Mutex.lock mutex;
  while !current <> None do
    Condition.wait done_cond mutex
  done;
  incr next_batch_id;
  let b =
    {
      id = !next_batch_id;
      run_task;
      n;
      chunk;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      helpers_wanted = helpers;
      joined = Atomic.make 0;
      finished = false;
    }
  in
  current := Some b;
  Metrics.incr m_batches;
  Metrics.incr ~by:n m_tasks;
  Metrics.set g_queue_depth (float_of_int n);
  Condition.broadcast work_cond;
  Mutex.unlock mutex;
  drain ~helper:false b;
  Mutex.lock mutex;
  while not b.finished do
    Condition.wait done_cond mutex
  done;
  current := None;
  Metrics.set g_queue_depth 0.0;
  (* Fraction of the process's domains (workers + the submitter) that
     took part in the batch just finished. *)
  let participants = min (Atomic.get b.joined) b.helpers_wanted + 1 in
  let capacity = List.length !worker_handles + 1 in
  Metrics.set g_utilization (float_of_int participants /. float_of_int capacity);
  Condition.broadcast done_cond;
  Mutex.unlock mutex

let map_array ?jobs f xs =
  let n = Array.length xs in
  let jobs = min (effective_jobs ?jobs ()) n in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    let failures : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let run_task i =
      match f xs.(i) with
      | r -> results.(i) <- Some r
      | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    ensure_workers (jobs - 1);
    run_batch ~helpers:(jobs - 1) ~n ~chunk:(max 1 (n / (jobs * 4))) run_task;
    (* Deterministic failure semantics: the lowest-index exception is
       re-raised, as a sequential left-to-right run would. *)
    let first_failure = ref None in
    for i = n - 1 downto 0 do
      match failures.(i) with Some _ as f -> first_failure := f | None -> ()
    done;
    match !first_failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* every task stored a result or failed *))
        results
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))

let run ?jobs tasks = map ?jobs (fun t -> t ()) tasks
