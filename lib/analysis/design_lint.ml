module Mapping = Noc_core.Mapping
module Verify = Noc_core.Verify
module Resources = Noc_core.Resources
module Route = Noc_arch.Route
module Mesh = Noc_arch.Mesh
module D = Diagnostic

let check (m : Mapping.t) use_cases =
  let report = Verify.verify m use_cases in
  let verify_diags =
    List.map
      (fun (v : Verify.violation) ->
        D.vf ~pass:("verify-" ^ v.Verify.kind) Error "use-case %d, flow %d -> %d: %s"
          v.Verify.use_case v.Verify.src_core v.Verify.dst_core v.Verify.detail)
      report.Verify.violations
  in
  let n_switch = Mesh.switch_count m.Mapping.mesh in
  let range = ref [] in
  Array.iteri
    (fun core s ->
      if s < 0 || s >= n_switch then
        range :=
          D.vf ~pass:"placement-range" Error "core %d sits on switch %d, outside 0..%d" core
            s (n_switch - 1)
          :: !range)
    m.Mapping.placement;
  (* A best-effort route across a saturated link delivers nothing in
     the worst case — legal (BE has no contract) but worth surfacing. *)
  let starved =
    List.filter_map
      (fun (r : Route.t) ->
        if r.Route.service = Route.Be && r.Route.links <> [] then begin
          let st = m.Mapping.states.(r.Route.use_case) in
          if List.exists (fun l -> Resources.free_slots st l = 0) r.Route.links then
            Some
              (D.vf ~pass:"be-starvation" Warning
                 "use-case %d: best-effort flow %d -> %d crosses a fully reserved link \
                  (zero worst-case bandwidth)"
                 r.Route.use_case r.Route.src_core r.Route.dst_core)
          else None
        end
        else None)
      m.Mapping.routes
  in
  let idle = n_switch - Mapping.switches_in_use m in
  let idle_diag =
    if idle > 0 then
      [
        D.vf ~pass:"unused-switches" Info "%d of %d switches host no core and carry no route"
          idle n_switch;
      ]
    else []
  in
  let summary =
    D.vf ~pass:"verify" Info "%d structural checks, %d violations" report.Verify.checks
      (List.length report.Verify.violations)
  in
  verify_diags @ List.rev !range @ starved @ idle_diag @ [ summary ]
