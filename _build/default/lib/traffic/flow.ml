type service =
  | Guaranteed
  | Best_effort

type t = {
  src : int;
  dst : int;
  bandwidth : Noc_util.Units.bandwidth;
  latency_ns : Noc_util.Units.latency;
  service : service;
}

let v ?(latency_ns = infinity) ?(service = Guaranteed) ~src ~dst bandwidth =
  { src; dst; bandwidth; latency_ns; service }

let is_guaranteed t = t.service = Guaranteed

let pair t = (t.src, t.dst)

let validate ~cores t =
  if t.src < 0 || t.src >= cores then Error (Printf.sprintf "flow source %d out of range" t.src)
  else if t.dst < 0 || t.dst >= cores then
    Error (Printf.sprintf "flow destination %d out of range" t.dst)
  else if t.src = t.dst then Error "flow endpoints must differ"
  else if t.bandwidth <= 0.0 then Error "flow bandwidth must be positive"
  else if t.latency_ns <= 0.0 then Error "flow latency constraint must be positive"
  else if t.service = Best_effort && t.latency_ns <> infinity then
    Error "a best-effort flow cannot carry a latency constraint"
  else Ok ()

let service_rank = function Guaranteed -> 0 | Best_effort -> 1

let compare_bandwidth_desc a b =
  match compare (service_rank a.service) (service_rank b.service) with
  | 0 -> (
    match compare b.bandwidth a.bandwidth with
    | 0 -> compare (a.src, a.dst) (b.src, b.dst)
    | c -> c)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%d->%d %a%s" t.src t.dst Noc_util.Units.pp_bandwidth t.bandwidth
    (match t.service with Guaranteed -> "" | Best_effort -> " [BE]");
  if t.latency_ns <> infinity then Format.fprintf ppf " (lat<=%a)" Noc_util.Units.pp_latency t.latency_ns
