lib/power/pareto.mli: Noc_arch Noc_traffic Noc_util
