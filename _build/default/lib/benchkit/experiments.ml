module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Mesh = Noc_arch.Mesh
module Config = Noc_arch.Noc_config
module Use_case = Noc_traffic.Use_case
module Table = Noc_util.Ascii_table

type method_result = {
  switches : int option;
  mesh : (int * int) option;
  seconds : float;
}

type comparison_row = {
  label : string;
  ours : method_result;
  wc : method_result;
  ratio : float option;
}

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let run_ours use_cases =
  let result, seconds =
    timed (fun () -> DF.run (DF.spec_of_use_cases ~name:"bench" use_cases))
  in
  match result with
  | Ok d ->
    let m = d.DF.mapping.Mapping.mesh in
    {
      switches = Some (DF.switch_count d);
      mesh = Some (Mesh.width m, Mesh.height m);
      seconds;
    }
  | Error _ -> { switches = None; mesh = None; seconds }

let run_wc use_cases =
  let result, seconds = timed (fun () -> WC.map_design use_cases) in
  match result with
  | Ok m ->
    let mesh = m.Mapping.mesh in
    {
      switches = Some (Mapping.switch_count m);
      mesh = Some (Mesh.width mesh, Mesh.height mesh);
      seconds;
    }
  | Error _ -> { switches = None; mesh = None; seconds }

let compare_methods ~label use_cases =
  let ours = run_ours use_cases in
  let wc = run_wc use_cases in
  let ratio =
    match (ours.switches, wc.switches) with
    | Some a, Some b when b > 0 -> Some (float_of_int a /. float_of_int b)
    | _ -> None
  in
  { label; ours; wc; ratio }

let fig6a () =
  List.map (fun (name, ucs) -> compare_methods ~label:name ucs) (Soc_designs.all_designs ())

let default_counts = [ 2; 5; 10; 15; 20 ]

let fig6b ?(counts = default_counts) () =
  List.map
    (fun u ->
      let ucs = Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:u in
      compare_methods ~label:(Printf.sprintf "Sp-%d" u) ucs)
    counts

(* Bot use-cases share the hotspot structure, so their patterns are
   more alike across use-cases than Sp's (paper §6.2 attributes WC's
   worse Sp results to exactly this difference in variation). *)
let bot_benchmark ~seed ~use_cases =
  Synthetic.generate_family ~seed ~params:Synthetic.bottleneck_params ~use_cases ~similarity:0.4

let fig6c ?(counts = default_counts) () =
  List.map
    (fun u ->
      let ucs = bot_benchmark ~seed:300 ~use_cases:u in
      compare_methods ~label:(Printf.sprintf "Bot-%d" u) ucs)
    counts

let forty_use_cases () =
  [
    compare_methods ~label:"Sp-40"
      (Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:40);
    compare_methods ~label:"Bot-40" (bot_benchmark ~seed:300 ~use_cases:40);
  ]

let fig7a ?frequencies () =
  let use_cases = Soc_designs.d1 () in
  let groups = List.mapi (fun i _ -> [ i ]) use_cases in
  Noc_power.Pareto.sweep ?frequencies ~config:Config.default ~groups use_cases

type fig7b_row = {
  design : string;
  f_design : float;
  use_case_freqs : float list;
  savings_pct : float option;
}

let fig7b_for ~design_name use_cases =
  match DF.run (DF.spec_of_use_cases ~name:design_name use_cases) with
  | Error _ -> { design = design_name; f_design = 0.0; use_case_freqs = []; savings_pct = None }
  | Ok d ->
    let m = d.DF.mapping in
    let freqs =
      List.map
        (fun u ->
          match Noc_power.Min_freq.for_use_case_on_design ~design:m u with
          | Some f -> f
          | None -> m.Mapping.config.Config.freq_mhz)
        d.DF.all_use_cases
    in
    (* The busiest use-case pins the frequency the design must sustain;
       DVS scales the others down during their epochs. *)
    let f_design = List.fold_left Float.max 0.0 freqs in
    let epochs = List.map (fun f -> (f, 1.0)) freqs in
    let savings =
      if f_design > 0.0 then Some (Noc_power.Dvfs.savings_percent ~f_design ~epochs) else None
    in
    { design = design_name; f_design; use_case_freqs = freqs; savings_pct = savings }

let fig7b () =
  List.map (fun (name, ucs) -> fig7b_for ~design_name:name ucs) (Soc_designs.all_designs ())

type fig7c_row = {
  parallel : int;
  freq_mhz : float option;
}

let fig7c ?(max_parallel = 4) () =
  let n_base = 10 in
  let use_cases =
    Synthetic.generate ~seed:777 ~params:Synthetic.spread_params ~use_cases:n_base
  in
  (* Disjoint chunks of k use-cases running in parallel. *)
  let sets k =
    let rec chunks from acc =
      if from + k > n_base then List.rev acc
      else chunks (from + k) (List.init k (fun j -> from + j) :: acc)
    in
    if k = 1 then [] else chunks 0 []
  in
  let with_compounds k =
    Noc_core.Compound.generate use_cases ~parallel:(sets k) |> fst
  in
  (* Size the mesh once, for the most demanding parallelism, then ask
     what clock each parallelism level needs on that same NoC — the
     trade-off plot the paper gives the designer. *)
  let all_max = with_compounds max_parallel in
  let groups_of ucs = List.mapi (fun i _ -> [ i ]) ucs in
  match Mapping.map_design ~config:Config.default ~groups:(groups_of all_max) all_max with
  | Error _ -> List.init max_parallel (fun i -> { parallel = i + 1; freq_mhz = None })
  | Ok sized ->
    let mesh = sized.Mapping.mesh in
    List.init max_parallel (fun i ->
        let k = i + 1 in
        let all = with_compounds k in
        let freq =
          Noc_power.Min_freq.for_use_cases_on_mesh ~config:Config.default ~mesh
            ~groups:(groups_of all) all
        in
        { parallel = k; freq_mhz = freq })

type stats_row = {
  family : string;
  seeds : int;
  mean_ratio : float;
  stddev_ratio : float;
  wc_failures : int;
}

let fig6_statistics ?(seeds = [ 11; 22; 33; 44; 55 ]) ?(use_cases = 10) () =
  let run family gen =
    let ratios = ref [] in
    let failures = ref 0 in
    List.iter
      (fun seed ->
        let ucs = gen ~seed in
        let row = compare_methods ~label:family ucs in
        match row.ratio with
        | Some r -> ratios := r :: !ratios
        | None -> incr failures)
      seeds;
    {
      family;
      seeds = List.length seeds;
      mean_ratio = Noc_util.Numeric.mean !ratios;
      stddev_ratio = Noc_util.Numeric.stddev !ratios;
      wc_failures = !failures;
    }
  in
  [
    run "Sp" (fun ~seed -> Synthetic.generate ~seed ~params:Synthetic.spread_params ~use_cases);
    run "Bot" (fun ~seed ->
        Synthetic.generate_family ~seed ~params:Synthetic.bottleneck_params ~use_cases
          ~similarity:0.4);
  ]

type scalability_row = {
  n_use_cases : int;
  ours_seconds : float;
  ours_switches : int option;
}

let scalability ?(counts = [ 5; 10; 20; 40; 80 ]) () =
  List.map
    (fun n ->
      let ucs = Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:n in
      let result, seconds =
        timed (fun () -> DF.run (DF.spec_of_use_cases ~name:"scale" ucs))
      in
      {
        n_use_cases = n;
        ours_seconds = seconds;
        ours_switches = (match result with Ok d -> Some (DF.switch_count d) | Error _ -> None);
      })
    counts

(* --- rendering ------------------------------------------------------- *)

let string_of_switches = function Some n -> string_of_int n | None -> "infeasible"

let string_of_mesh = function Some (w, h) -> Printf.sprintf "%dx%d" w h | None -> "-"

let print_comparison ~title ~paper_note rows =
  print_endline title;
  print_endline paper_note;
  let t =
    Table.create ~header:[ "benchmark"; "ours (mesh)"; "WC (mesh)"; "ratio ours/WC"; "time (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.label;
          Printf.sprintf "%s (%s)" (string_of_switches r.ours.switches) (string_of_mesh r.ours.mesh);
          Printf.sprintf "%s (%s)" (string_of_switches r.wc.switches) (string_of_mesh r.wc.mesh);
          (match r.ratio with Some x -> Printf.sprintf "%.3f" x | None -> "-");
          Printf.sprintf "%.2f" (r.ours.seconds +. r.wc.seconds);
        ])
    rows;
  Table.print t;
  print_newline ()

let print_fig7a points =
  print_endline "Fig 7(a): area-frequency trade-off for D1";
  print_endline "paper shape: large area below ~350 MHz, very small above 1.5 GHz";
  let t = Table.create ~header:[ "freq (MHz)"; "switches"; "area (mm2)" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" p.Noc_power.Pareto.freq_mhz;
          string_of_switches p.Noc_power.Pareto.switches;
          (match p.Noc_power.Pareto.area_mm2 with
          | Some a -> Printf.sprintf "%.3f" a
          | None -> "-");
        ])
    points;
  Table.print t;
  print_newline ()

let print_fig7b rows =
  print_endline "Fig 7(b): DVS/DFS power savings";
  print_endline "paper: average 54 % across the SoC designs";
  let t = Table.create ~header:[ "design"; "f_design (MHz)"; "savings (%)" ] in
  let savings = ref [] in
  List.iter
    (fun r ->
      (match r.savings_pct with Some s -> savings := s :: !savings | None -> ());
      Table.add_row t
        [
          r.design;
          Printf.sprintf "%.0f" r.f_design;
          (match r.savings_pct with Some s -> Printf.sprintf "%.1f" s | None -> "-");
        ])
    rows;
  Table.print t;
  if !savings <> [] then
    Printf.printf "average savings: %.1f %%\n" (Noc_util.Numeric.mean !savings);
  print_newline ()

let print_fig7c rows =
  print_endline "Fig 7(c): NoC frequency vs number of parallel use-cases (20-core, 10-use-case Sp)";
  print_endline "paper shape: frequency grows roughly linearly with the parallelism";
  let t = Table.create ~header:[ "parallel use-cases"; "required freq (MHz)" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.parallel;
          (match r.freq_mhz with Some f -> Printf.sprintf "%.0f" f | None -> "infeasible");
        ])
    rows;
  Table.print t;
  print_newline ()

let print_fig6a () =
  print_comparison ~title:"Fig 6(a): normalized switch count, SoC designs D1-D4"
    ~paper_note:"paper shape: WC reasonable on D1/D2, far larger on D3/D4"
    (fig6a ())

let print_fig6b () =
  print_comparison ~title:"Fig 6(b): Sp benchmarks, 2-20 use-cases"
    ~paper_note:"paper shape: ratio <= 0.25 and falling with the use-case count"
    (fig6b ())

let print_fig6c () =
  print_comparison ~title:"Fig 6(c): Bot benchmarks, 2-20 use-cases"
    ~paper_note:"paper shape: ratio falls with the use-case count; Sp lower than Bot"
    (fig6c ())

let print_s62 () =
  print_comparison ~title:"Sec 6.2: 40 use-cases"
    ~paper_note:"paper: ours maps onto 2x2; WC fails even on a 20x20 mesh"
    (forty_use_cases ())

let print_one = function
  | "fig6a" -> Ok (print_fig6a ())
  | "fig6b" -> Ok (print_fig6b ())
  | "fig6c" -> Ok (print_fig6c ())
  | "s62" -> Ok (print_s62 ())
  | "fig7a" -> Ok (print_fig7a (fig7a ()))
  | "fig7b" -> Ok (print_fig7b (fig7b ()))
  | "fig7c" -> Ok (print_fig7c (fig7c ()))
  | other -> Error (Printf.sprintf "unknown experiment '%s'" other)

let print_statistics rows =
  print_endline "Seed robustness: ours/WC ratio at 10 use-cases over 5 seeds";
  let t = Table.create ~header:[ "family"; "seeds"; "mean ratio"; "stddev"; "WC failures" ] in
  List.iter
    (fun (r : stats_row) ->
      Table.add_row t
        [
          r.family;
          string_of_int r.seeds;
          Printf.sprintf "%.3f" r.mean_ratio;
          Printf.sprintf "%.3f" r.stddev_ratio;
          string_of_int r.wc_failures;
        ])
    rows;
  Table.print t;
  print_newline ()

let print_scalability rows =
  print_endline "Scalability: design-flow runtime vs use-case count (Sp family)";
  print_endline "paper: \"less than few minutes\" and \"scalable to a large number of use-cases\"";
  let t = Table.create ~header:[ "use-cases"; "switches"; "runtime (s)" ] in
  List.iter
    (fun (r : scalability_row) ->
      Table.add_row t
        [
          string_of_int r.n_use_cases;
          (match r.ours_switches with Some s -> string_of_int s | None -> "infeasible");
          Printf.sprintf "%.2f" r.ours_seconds;
        ])
    rows;
  Table.print t;
  print_newline ()

let print_all () =
  print_fig6a ();
  print_fig6b ();
  print_fig6c ();
  print_s62 ();
  print_fig7a (fig7a ());
  print_fig7b (fig7b ());
  print_fig7c (fig7c ());
  print_statistics (fig6_statistics ());
  print_scalability (scalability ())
