(** The pass manager behind [nocmap lint].

    Runs the spec well-formedness passes ({!Spec_lint.check}), the
    feasibility passes ({!Spec_lint.feasibility}) and — in deep mode —
    the post-mapping design passes ({!Design_lint.check}) plus the
    independent certificate checker ({!Certify}) over one document,
    and renders the combined findings as text or JSON. *)

type report = {
  diagnostics : Diagnostic.t list;
      (** located diagnostics in source order, design passes last *)
  certificate : Noc_core.Feasibility.t option;
      (** present whenever the feasibility passes could run *)
}

val analyze_doc :
  ?config:Noc_arch.Noc_config.t -> ?deep:bool -> Noc_core.Spec_parser.doc -> report
(** Analyze a located document.  [deep] (default [false]) additionally
    runs the full design flow, the post-mapping passes and the
    {!Certify} checker on the result; a mapping failure surfaces as a
    [mapping] error, certificate findings as [certify-*] errors. *)

val analyze_spec :
  ?config:Noc_arch.Noc_config.t -> ?deep:bool -> Noc_core.Design_flow.spec -> report
(** Analyze a programmatic spec through the same pipeline (rendered
    with {!Noc_core.Spec_parser.to_text}, so lines refer to the
    rendered form). *)

val exit_code : report -> int
(** 2 on any error, 1 on warnings only, 0 otherwise. *)

val render_text : report -> string
(** One [pp]'d line per diagnostic plus a severity tally. *)

val render_json : report -> string
(** [{"diagnostics": [...], "certificate": {...}|null, "exit_code": n}]
    (validates under {!Noc_export.Json.validate}). *)
