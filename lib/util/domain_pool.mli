(** A process-wide pool of worker domains for embarrassingly parallel
    batches.

    The sweep layers of the design flow (mesh-size speculation,
    design-space exploration, minimum-frequency grids, benchmark
    figures) all reduce to "run these independent closures and give me
    the results in order".  Spawning a [Domain.t] per closure — what the
    mapping search did before — costs a fresh minor heap and a kernel
    thread every call; this module instead spawns the workers once per
    process and feeds them batches through a chunked, atomically-claimed
    task queue (each participant steals the next unclaimed chunk of
    indices, so uneven task costs balance out).

    Guarantees:
    - results come back ordered by task index, independent of how the
      chunks were scheduled across workers;
    - an exception raised by a task is captured and re-raised in the
      submitter, with the lowest-index failure winning — exactly what a
      left-to-right sequential run of the same closures would raise;
    - a task that itself submits a batch (e.g. a design-space point
      whose [Mapping.map_design] wants to speculate over mesh sizes)
      runs that nested batch inline on its own domain, so the pool never
      deadlocks and never oversubscribes the machine;
    - with one job (or on a single-core machine) everything runs inline
      on the calling domain — no domains are spawned at all. *)

val default_jobs : unit -> int
(** Worker budget used when [?jobs] is omitted.  Initially
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Override the default worker budget (the CLI [--jobs N] knob).
    Values below 1 are clamped to 1. *)

val effective_jobs : ?jobs:int -> unit -> int
(** The parallelism a batch submitted right now would actually get:
    [jobs] (or the default), clamped to 1 inside a pool worker (nested
    batches run inline). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, evaluating up to [jobs]
    elements concurrently, and returns the results in list order. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run tasks] evaluates the closures concurrently, results in task
    order. *)

val shutdown : unit -> unit
(** Join the worker domains (registered via [at_exit]; callable
    directly from tests).  The pool respawns on the next submission. *)
