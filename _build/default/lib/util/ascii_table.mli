(** Rendering of small result tables as aligned ASCII text.

    The benchmark harness prints every reproduced figure as a table of
    rows; this module keeps the formatting in one place. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : header:string list -> t
(** Fresh table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_float_row : t -> string -> float list -> unit
(** Convenience: a label cell followed by numbers printed as [%.3f]. *)

val render : ?align:align -> t -> string
(** Render with a separator line under the header.  Numeric-looking
    cells read best with [~align:Right] (the default). *)

val print : ?align:align -> t -> unit
(** [render] to stdout, followed by a newline. *)
