lib/rtl/systemc.mli: Noc_arch Noc_core
