(* Spec-driven design: describe the SoC in the textual spec format,
   run the full flow, and print the analytic design report.

   The same spec text can live in a file and be run with
   `nocmap map --spec file.noc` / `nocmap report --spec file.noc`.

   Run with: dune exec examples/spec_and_report.exe *)

let spec_text =
  String.concat "\n"
    [
      "name portable-player";
      "cores 6";
      "# cores: 0 memory, 1 cpu, 2 decoder, 3 display, 4 audio, 5 storage";
      "";
      "use-case video-playback";
      "  flow 5 -> 0 bw 60";
      "  flow 0 -> 2 bw 240";
      "  flow 2 -> 0 bw 200";
      "  flow 0 -> 3 bw 260";
      "  flow 0 -> 4 bw 6";
      "  flow 1 -> 0 bw 2 lat 600";
      "";
      "use-case music";
      "  flow 5 -> 0 bw 10 be          # bulk prefetch: best effort";
      "  flow 0 -> 4 bw 4 lat 900";
      "  flow 1 -> 0 bw 1 lat 900";
      "";
      "use-case sync";
      "  flow 5 -> 0 bw 80 be";
      "  flow 0 -> 5 bw 80 be";
      "  flow 1 -> 0 bw 2 lat 900";
      "";
      "parallel music sync              # listen while syncing";
      "smooth video-playback music      # no glitch when pausing video";
      "";
    ]

let () =
  match Noc_core.Spec_parser.parse ~name:"portable-player" spec_text with
  | Error e ->
    Format.eprintf "spec error: %a@." Noc_core.Spec_parser.pp_error e;
    exit 1
  | Ok spec -> (
    match Noc_core.Design_flow.run spec with
    | Error msg ->
      prerr_endline ("design failed: " ^ msg);
      exit 1
    | Ok design ->
      let report = Noc_report.Design_report.build design in
      Noc_report.Design_report.print report;
      (match Noc_report.Design_report.min_slack_ns report with
      | Some slack -> Format.printf "@.critical latency margin: %.0f ns@." slack
      | None -> ());
      (* the spec round-trips, so a designer can regenerate the file *)
      print_newline ();
      print_endline "# spec as re-emitted by the tool:";
      print_string (Noc_core.Spec_parser.to_text spec))
