(** A configured connection: the path and TDMA reservation of one flow
    in one use-case's NoC configuration. *)

type service =
  | Gt  (** guaranteed throughput: reserved slots, enforced contract *)
  | Be  (** best effort: leftover slots, no reservation *)

type t = {
  flow_id : int;          (** connection / flow identifier *)
  use_case : int;         (** use-case this configuration belongs to *)
  src_core : int;         (** source core *)
  dst_core : int;         (** destination core *)
  src_switch : int;       (** switch hosting the source core's NI *)
  dst_switch : int;       (** switch hosting the destination core's NI *)
  bandwidth : Noc_util.Units.bandwidth;
      (** the flow's required (GT) or offered (BE) bandwidth *)
  service : service;
  links : int list;       (** link ids in travel order; [] when both NIs share a switch *)
  slot_starts : int list;
      (** reserved starting slots (always empty for BE and for a
          same-switch route) *)
}

val hops : t -> int
(** Number of inter-switch links traversed. *)

val uses_link : t -> int -> bool

val worst_case_latency_ns : config:Noc_config.t -> t -> Noc_util.Units.latency
(** Latency bound of the connection.  A same-switch route costs one
    slot duration (NI-to-NI through the local switch); a best-effort
    route has no bound ([infinity]). *)

val pp : Format.formatter -> t -> unit
