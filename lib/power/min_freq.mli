(** Minimum feasible NoC frequency searches.

    Used twice by the evaluation: per use-case minimum frequency on the
    already-designed NoC (input to DVS/DFS, Fig 7b), and minimum
    frequency at which a fixed-size mesh supports a set of (possibly
    compound) use-cases (Fig 7c). *)

val default_grid : Noc_util.Units.frequency list
(** Candidate DVS levels: 25 MHz steps from 25 MHz to 2000 MHz. *)

val search :
  ?jobs:int ->
  Noc_util.Units.frequency list ->
  (Noc_util.Units.frequency -> bool) ->
  Noc_util.Units.frequency option
(** Smallest grid level accepted by the feasibility probe.  The grid is
    scanned in ascending order (feasibility is not perfectly monotonic
    in frequency, so no binary search); with [jobs > 1] the scan probes
    ascending chunks of [jobs] levels concurrently on the shared
    {!Noc_util.Domain_pool}, which returns the identical answer while
    wasting at most [jobs - 1] probes past the sequential stop. *)

val for_use_case_on_design :
  ?grid:Noc_util.Units.frequency list ->
  ?jobs:int ->
  ?prune:bool ->
  design:Noc_core.Mapping.t ->
  Noc_traffic.Use_case.t ->
  Noc_util.Units.frequency option
(** Smallest grid frequency at which the single use-case routes on the
    designed mesh with the designed core placement (paths and slot
    tables may be re-configured, which is exactly what the use-case
    switching window allows).  [None] when even the fastest level
    fails.  Levels above the design frequency are not tried — the
    result is always a down-scaling.  [prune] (default [true]) lets a
    {!Noc_core.Feasibility} certificate answer provably infeasible
    levels without running the mapper; the answer is unchanged. *)

val for_use_cases_on_mesh :
  ?grid:Noc_util.Units.frequency list ->
  ?jobs:int ->
  ?prune:bool ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  Noc_util.Units.frequency option
(** Smallest grid frequency at which the whole use-case set maps onto
    the given mesh (placement free).  [None] when no level fits.
    [prune] as in {!for_use_case_on_design}. *)
